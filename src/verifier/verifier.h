/**
 * @file
 * The HerQules verifier (paper §3.4), sharded.
 *
 * A user-space process that maintains a policy context per monitored
 * application. It receives messages over AppendWrite channels, is
 * notified of process events (enable/fork/exit) by the kernel module
 * over the privileged channel, and notifies the kernel to resume paused
 * system calls once all of a process's outstanding messages have been
 * processed without a policy violation.
 *
 * The paper's verifier is one polling loop; because per-process policy
 * state is independent and validation is asynchronous anyway, this
 * implementation shards the loop: each monitored pid is assigned to one
 * of Config::num_shards worker shards by a consistent hash at process
 * start (src/verifier/shard.h), and that shard owns the pid's channels,
 * policy context (FlatMap tables), lag-envelope matching, and metrics.
 * The per-message hot path never takes a cross-shard lock; shards
 * coordinate only at process start/exit and crash-recovery replay via
 * the ShardRegistry. Device-stamped channels (FPGA) may carry messages
 * for any pid, so their poller resolves the pid's home shard by the
 * same hash and processes against that shard's state.
 *
 * By default monitored programs are killed upon policy violation, but —
 * as in the paper's evaluation, which continues execution to count false
 * positives — this behavior is configurable.
 */

#ifndef HQ_VERIFIER_VERIFIER_H
#define HQ_VERIFIER_VERIFIER_H

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/stats.h"
#include "ipc/channel.h"
#include "kernel/kernel.h"
#include "policy/policy.h"
#include "telemetry/event_log.h"
#include "telemetry/health.h"
#include "telemetry/telemetry.h"
#include "verifier/shard.h"

namespace hq {

/** Per-process verifier statistics (§5.4 metrics). */
struct VerifierProcessStats
{
    std::uint64_t messages = 0;     //!< messages processed
    std::uint64_t violations = 0;   //!< failed policy checks
    std::uint64_t syscall_acks = 0; //!< resume notifications sent
    std::size_t max_entries = 0;    //!< peak policy metadata entries
};

class Verifier : public ProcessEventListener
{
  public:
    /** Upper bound on Config::poll_batch (sizes poll()'s stack buffer). */
    static constexpr std::size_t kMaxPollBatch = 256;

    /** Upper bound on Config::num_shards (and the auto default). */
    static constexpr std::size_t kMaxShards = 16;

    struct Config
    {
        /** Ask the kernel to kill the process on a violation. */
        bool kill_on_violation = true;
        /**
         * Verify consecutive per-channel sequence counters. The FPGA
         * AFU stamps its own device counter; software channels are
         * stamped by the Channel::send wrapper — either way a gap or
         * repeat means messages were dropped or duplicated in flight.
         */
        bool check_sequence = false;
        /**
         * Verify the per-message CRC guard (Message::pad, stamped by
         * Channel::send / the AFU). A mismatch is a CorruptMsg
         * violation and the payload is never interpreted (fail
         * closed) — so a flipped bit cannot be mis-verified as a valid
         * policy message. Off by default: only chaos/fault runs and
         * integrity tests need it.
         */
        bool check_crc = false;
        /**
         * Kill still-running monitored processes when the verifier
         * terminates (the paper's default for unexpected verifier
         * termination; configurable, §3.4).
         */
        bool kill_on_verifier_exit = false;
        /**
         * Messages drained per channel per poll round. Validated at
         * construction: values outside [1, kMaxPollBatch] are clamped
         * (poll()'s stack buffer is sized by kMaxPollBatch, so an
         * over-limit config must never reach the drain loop). One
         * lock acquisition, one virtual tryRecvBatch call, and one
         * telemetry scope are amortized over each batch; the bound
         * doubles as a round-robin fairness cap, so one busy channel
         * cannot starve the others.
         */
        std::size_t poll_batch = 64;
        /**
         * Verification-lag SLO watermark in nanoseconds. Each message
         * whose enqueue-to-check lag (measured via the channel's lag
         * sidecar) exceeds this increments `verifier.lag_slo_breaches`.
         * 0 disables the check. Only meaningful while telemetry is on.
         */
        std::uint64_t lag_slo_ns = 1'000'000;
        /**
         * Worker shards. 0 = auto: std::thread::hardware_concurrency,
         * clamped to [1, kMaxShards]. With 1 shard the verifier is the
         * paper's serial polling loop. start() spawns one event-loop
         * thread per shard; poll() drains every shard on the caller's
         * thread either way, so deterministic tests are unaffected.
         */
        std::size_t num_shards = 0;
        /**
         * Run the shard health watchdog (telemetry::HealthMonitor):
         * every shard bumps a heartbeat per drain pass, the watchdog
         * samples heartbeats / per-channel queue depth / syscall-ack
         * age and publishes OK/DEGRADED/STALLED per shard. Off by
         * default: when disabled no watchdog thread exists and the
         * heartbeat is the only (relaxed, per-drain-pass) cost.
         */
        bool health_enabled = false;
        /** Watchdog thresholds; used only when health_enabled. */
        telemetry::HealthConfig health{};
        /**
         * Proactive ack push: whenever a drain round leaves a
         * process's channel empty with no violation, pre-arm its
         * kernel gate (KernelModule::preArmProcess) so the next
         * syscallEnter() returns without blocking instead of paying
         * the poll-then-ack round trip that dominates p99. Off by
         * default — a pre-armed admission runs one syscall ahead of
         * verification (the same contract as speculation_window = 1),
         * which strict-mode callers must not get implicitly. Never
         * applied to device-stamped channels (they interleave pids).
         */
        bool proactive_acks = false;
    };

    /**
     * @param kernel the kernel module (privileged channel peer)
     * @param policy policy whose contexts govern monitored processes
     */
    Verifier(KernelModule &kernel, std::shared_ptr<Policy> policy);
    Verifier(KernelModule &kernel, std::shared_ptr<Policy> policy,
             Config config);
    ~Verifier() override;

    /**
     * Register a message channel owned by one monitored process. The
     * channel joins its owner's shard: that shard's worker becomes the
     * only consumer, preserving the SPSC contract of the ring-backed
     * transports. For device-stamped channels (FPGA) the message PID
     * field is trusted; for software channels the registered owner
     * identifies the sender, mirroring kernel-arbitrated channel
     * creation.
     *
     * @param device_stamped message.pid comes from trusted hardware
     */
    void attachChannel(Channel *channel, Pid owner,
                       bool device_stamped = false);

    /**
     * Remove a previously attached channel. Serializes against an
     * in-flight drain (the drain-list snapshot holds raw entry
     * pointers), and — the churn edge — reclaims the owner's
     * policy-table slice when this was the pid's last channel and the
     * pid is no longer live: an exited process's slice is kept for
     * post-mortem inspection only while a channel could still name it.
     * No-op if the channel was never attached.
     */
    void detachChannel(Channel *channel);

    /** Start one event-loop thread per shard. */
    void start();

    /** Drain remaining messages and stop the event-loop threads. */
    void stop();

    /**
     * Process pending messages synchronously on the caller's thread,
     * draining every shard in index order. Used by deterministic unit
     * tests instead of start()/stop().
     * @return number of messages processed.
     */
    std::size_t poll();

    /**
     * Drain one shard's channels on the caller's thread. Safe against
     * a concurrently running shard worker (a per-shard drain mutex
     * serializes consumers).
     * @return number of messages processed.
     */
    std::size_t pollShard(std::size_t shard_index);

    // --- ProcessEventListener (privileged kernel notifications) ------
    void onProcessEnabled(Pid pid) override;
    void onProcessForked(Pid parent, Pid child) override;
    void onProcessExited(Pid pid) override;
    void onSyscallGate(Pid pid) override;

    // --- Introspection -------------------------------------------------
    bool hasViolation(Pid pid) const;
    VerifierProcessStats statsFor(Pid pid) const;

    /** Policy context for a pid (test hook); nullptr when unknown. */
    PolicyContext *contextFor(Pid pid);

    /** Resolved shard count (Config::num_shards after auto/clamping). */
    std::size_t numShards() const { return _shards.size(); }

    /** Shard that owns pid's state (consistent hash; always valid). */
    std::size_t
    shardOf(Pid pid) const
    {
        return _registry.shardOf(pid);
    }

    /** Live-pid registry (tests and harness introspection). */
    const ShardRegistry &registry() const { return _registry; }

    /** Messages processed by one shard (always on; tests). */
    std::uint64_t shardMessages(std::size_t shard_index) const;

    /**
     * Policy-table slice entries across all shards (live + retained
     * post-mortem). The churn regression tests assert this returns to
     * baseline after attach/exit/detach cycles.
     */
    std::size_t policySliceCount() const;

    /** Attached channels across all shards. */
    std::size_t channelCount() const;

    /** Health watchdog (nullptr unless Config::health_enabled). */
    telemetry::HealthMonitor *healthMonitor() { return _health.get(); }

    /** Current health state of one shard (Ok when no watchdog). */
    telemetry::HealthState healthState(std::size_t shard_index) const
    {
        return _health ? _health->state(shard_index)
                       : telemetry::HealthState::Ok;
    }

    /** One deterministic watchdog sample on the caller's thread. */
    void
    sampleHealthOnce()
    {
        if (_health)
            _health->sampleOnce();
    }

    /** Pending (undrained) messages across one shard's channels. */
    std::uint64_t shardQueueDepth(std::size_t shard_index) const;

    /** Effective configuration (poll_batch/num_shards after clamping). */
    const Config &config() const { return _config; }

    /** Total messages processed across all processes. */
    std::uint64_t totalMessages() const
    {
        return _total_messages.load(std::memory_order_relaxed);
    }

    /**
     * True once an injected VerifierCrash fault killed this verifier.
     * A crashed verifier processes nothing further (poll() returns 0);
     * recovery is a *new* Verifier re-attaching the channels and
     * rebuilding state via KernelModule::replayProcessesTo.
     */
    bool crashed() const
    {
        return _crashed.load(std::memory_order_relaxed);
    }

  private:
    struct ChannelEntry
    {
        Channel *channel = nullptr;
        Pid owner = 0;
        bool device_stamped = false;
        std::uint32_t expected_seq = 0;
        bool seq_started = false;
        /// Messages drained from this channel so far; index of the next
        /// message, used to match lag-sidecar envelopes by sequence.
        std::uint64_t recv_index = 0;
        /// Cached per-owner lag histogram (`verifier.lag_ns.pid_<N>`);
        /// resolved on first lag sample (channels are per-process).
        telemetry::Histogram *pid_lag = nullptr;
    };

    struct ProcessEntry
    {
        std::unique_ptr<PolicyContext> context;
        VerifierProcessStats stats;
        bool violated = false;
        bool exited = false;
    };

    /**
     * Memo of the last pid -> ProcessEntry resolution, carrying the
     * home shard's state lock. Channels are per-process, so within one
     * drained batch the shard-hash + map lookup resolves once instead
     * of per message; the lock follows the memo (released/reacquired
     * only when a device-stamped batch switches pids across shards),
     * so the common case pays one lock acquisition per batch.
     */
    struct PidMemo
    {
        Pid pid = 0;
        ProcessEntry *entry = nullptr;
        bool valid = false;
        /// Home shard of `pid` (violations/acks are attributed here).
        std::size_t home_shard = 0;
        std::unique_lock<std::mutex> lock;
    };

    /** One verifier worker: owns its channels and process state. */
    struct Shard
    {
        /// Shard index (flight records attribute work to it).
        std::size_t index = 0;
        /// Drain passes completed; the health watchdog's liveness
        /// signal. Bumped once per pollShard call (relaxed; off the
        /// per-message path).
        std::atomic<std::uint64_t> heartbeat{0};
        /// monotonicRawNs() of the last syscall ack sent by this shard
        /// (0 = never). Only stamped while the watchdog exists.
        std::atomic<std::uint64_t> last_ack_ns{0};
        /**
         * Serializes draining: ring transports are single-consumer, so
         * only one thread may poll a shard at a time (the shard worker
         * in steady state; test threads / exit-drain otherwise).
         */
        std::mutex drain_mutex;
        /**
         * Guards processes and the channels list. Never held across a
         * tryRecvBatch: the drain loop snapshots channel pointers once
         * per round and locks per pid-run while checking.
         */
        mutable std::mutex state_mutex;
        std::vector<std::unique_ptr<ChannelEntry>> channels;
        std::unordered_map<Pid, ProcessEntry> processes;
        /// Scratch channel-pointer snapshot (touched under drain_mutex).
        std::vector<ChannelEntry *> drain_list;
        /// Syscall acks coalesced during the current drain round,
        /// flushed to the kernel in one syscallResumeBatch call per
        /// round (touched only under drain_mutex). Adjacent acks for
        /// the same pid merge into one entry's count.
        std::vector<KernelModule::SyscallAck> pending_acks;
        /// monotonicRawNs() at which each pending ack message was
        /// queued — one stamp per message, not per merged entry —
        /// feeding the verifier.ack_latency_ns histogram at flush.
        /// Only populated while telemetry is enabled.
        std::vector<std::uint64_t> pending_ack_ns;
        /// Owners whose channels this round drained empty; pre-armed
        /// at flush when proactive_acks is on (touched under
        /// drain_mutex).
        std::vector<Pid> pending_prearms;
        /// Gate-kick wakeup: onSyscallGate bumps gate_kicks and
        /// notifies, so an idle worker's nap ends the moment one of
        /// its pids traps into a syscall instead of at the nap timer.
        std::mutex wake_mutex;
        std::condition_variable wake_cv;
        std::atomic<std::uint64_t> gate_kicks{0};
        std::thread thread;
        /// Always-on per-shard message count (tests, cheap roll-ups).
        std::atomic<std::uint64_t> messages{0};
        // Per-shard metrics (`verifier.shard<i>.*`), resolved once at
        // construction; the unprefixed `verifier.*` metrics remain the
        // global roll-up (every shard records into both).
        telemetry::Counter *messages_metric = nullptr;
        telemetry::Counter *violations_metric = nullptr;
        telemetry::Counter *syscall_acks_metric = nullptr;
        telemetry::Counter *idle_sleeps_metric = nullptr;
    };

    /// Sentinel for "no lag sample matched this message".
    static constexpr std::uint64_t kNoLag = ~std::uint64_t{0};

    void shardLoop(std::size_t shard_index);
    /** Resolve pid's ProcessEntry via the memo, locking its home shard. */
    ProcessEntry *lookupProcess(Pid pid, PidMemo &memo);
    /**
     * Drain at most one poll-batch from a channel, picking the richest
     * path the transport supports: v2 frame decode over a borrowed span,
     * v1 in-place span validation, or the copying tryRecvBatch fallback.
     * @return messages (records) processed.
     */
    std::size_t drainChannel(Shard &shard, ChannelEntry &entry,
                             Message *scratch, std::size_t batch_max);
    /** v2 drain: decode/validate frames in place, fail closed on
     *  corruption, unpack good frames and process them as batches. */
    std::size_t drainFrames(Shard &shard, ChannelEntry &entry,
                            Message *scratch, std::size_t batch_max);
    /**
     * Feed n already-validated-or-self-checking messages drained from
     * entry through lag matching, policy prefetch, and handleMessage;
     * advances entry.recv_index and the batch telemetry. n must be > 0.
     * @param crc_trusted integrity was established at frame granularity
     *        (v2), so the per-message CRC check must not run — unpacked
     *        records carry pad == 0 by construction.
     */
    void processBatch(Shard &shard, ChannelEntry &entry,
                      const Message *batch, std::size_t n,
                      bool crc_trusted);
    /** CorruptMsg violation for a frame that failed decode, attributed
     *  to the channel's registered owner (fail closed, no payload). */
    void recordFrameCorruption(ChannelEntry &entry, const char *reason);
    void handleMessage(Shard &shard, ChannelEntry &entry,
                       const Message &message, PidMemo &memo,
                       std::uint64_t lag_ns, bool crc_trusted);
    /** Queue one syscall ack on the polling shard (drain_mutex held). */
    void queueAck(Shard &shard, Pid pid);
    /**
     * Send the round's coalesced acks in one syscallResumeBatch call
     * and apply any pending proactive pre-arms. A crashed verifier
     * drops everything unsent: its death must look like silence to the
     * kernel (fail closed, epoch timeout).
     */
    void flushAcks(Shard &shard);
    void recordViolation(std::size_t home_shard, Pid pid,
                         ProcessEntry &process, const std::string &reason,
                         const Message &message,
                         telemetry::EventType event_type,
                         std::uint64_t lag_ns);
    /// Match lag-sidecar envelopes for the batch just drained from
    /// `entry`, filling lag_ns[0..n) (kNoLag when unmatched) and
    /// recording the lag histograms/SLO metrics and flow-end events.
    void recordBatchLag(Shard &shard, ChannelEntry &entry, std::size_t n,
                        std::uint64_t *lag_ns);

    KernelModule &_kernel;
    std::shared_ptr<Policy> _policy;
    Config _config;

    ShardRegistry _registry;
    std::vector<std::unique_ptr<Shard>> _shards;

    std::atomic<bool> _running{false};
    std::atomic<bool> _crashed{false};
    std::atomic<std::uint64_t> _total_messages{0};
    /// Device-stamped channels currently attached (any shard). While
    /// nonzero, exited slices are always retained: a device channel can
    /// carry any pid's messages, so post-mortem lookups stay valid.
    std::atomic<std::size_t> _device_channels{0};

    /// Declared after _shards (samples them via callback); stopped in
    /// stop() before the channels can go away under it.
    std::unique_ptr<telemetry::HealthMonitor> _health;
};

} // namespace hq

#endif // HQ_VERIFIER_VERIFIER_H
