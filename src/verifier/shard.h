/**
 * @file
 * Pid -> shard assignment for the sharded verifier (and the kernel
 * module's bucketed process table).
 *
 * The paper's verifier is a single polling loop; its key structural
 * property — per-process policy state is independent, and verification
 * is asynchronous anyway — is exactly what makes sharding by pid safe.
 * Every monitored pid is assigned to one of N shards by a deterministic
 * hash at process start, and everything that pid touches (its
 * AppendWrite channels, its policy context and FlatMap tables, its lag
 * envelopes, its per-shard metrics) lives on that shard. The hot path
 * therefore never crosses shards: cross-shard coordination happens only
 * at process start/exit and during crash-recovery replay, through the
 * small registry below.
 *
 * The assignment is a pure hash (splitmix64 finalizer of the pid), so
 * it is *consistent*: the same pid always lands on the same shard for a
 * given shard count, across start/exit churn and across a verifier
 * restart — a replayed process rebuilds on the shard that its still-
 * attached channels already live on.
 */

#ifndef HQ_VERIFIER_SHARD_H
#define HQ_VERIFIER_SHARD_H

#include <cstdint>
#include <mutex>
#include <vector>

#include "common/flat_map.h"
#include "common/types.h"

namespace hq {

/**
 * Deterministic pid -> shard index in [0, num_shards). splitmix64's
 * finalizer mixes the pid so consecutive pids (fork storms allocate
 * them densely) spread across shards instead of striding.
 */
inline std::size_t
shardIndexFor(Pid pid, std::size_t num_shards)
{
    if (num_shards <= 1)
        return 0;
    std::uint64_t z = static_cast<std::uint64_t>(pid) +
                      0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    z ^= z >> 31;
    return static_cast<std::size_t>(z % num_shards);
}

/**
 * Registry of live pid -> shard assignments. The mapping itself is the
 * pure hash above — the registry records which pids are currently live
 * (and how many per shard) so lifecycle paths (kill-on-exit sweeps,
 * crash-recovery replay, load introspection) can reason about shard
 * population without touching any shard's hot-path state.
 *
 * All methods are thread-safe; none are on the per-message path.
 */
class ShardRegistry
{
  public:
    explicit ShardRegistry(std::size_t num_shards);

    std::size_t numShards() const { return _num_shards; }

    /**
     * Record pid as live and return its shard (process start).
     * Idempotent: re-assigning a live pid returns the same shard.
     */
    std::size_t assign(Pid pid);

    /** Shard owning pid. Pure hash: valid whether or not pid is live. */
    std::size_t
    shardOf(Pid pid) const
    {
        return shardIndexFor(pid, _num_shards);
    }

    /** Forget pid (process exit). @return true when pid was live. */
    bool release(Pid pid);

    bool isLive(Pid pid) const;

    /** Number of live pids assigned to `shard`. */
    std::size_t liveOn(std::size_t shard) const;

    /** Total live pids across all shards. */
    std::size_t liveCount() const;

    /** Snapshot of every live pid (stats sweeps, kill-on-exit). */
    std::vector<Pid> livePids() const;

  private:
    const std::size_t _num_shards;
    mutable std::mutex _mutex;
    FlatMap<Pid, std::uint32_t> _live; //!< live pid -> shard index
    std::vector<std::size_t> _per_shard;
};

} // namespace hq

#endif // HQ_VERIFIER_SHARD_H
