/**
 * @file
 * Shard health watchdog: detects wedged verifier drain loops.
 *
 * Bounded asynchronous validation only holds while every shard keeps
 * draining: a shard whose worker is stuck (livelock, scheduler
 * starvation, injected stall) silently stops enforcing its pids'
 * syscall gating budget. The watchdog samples each shard's heartbeat
 * (bumped once per drain pass), its channels' queue depth (the v2
 * accounting via Channel::pending), and the age of its last syscall
 * ack, and drives a per-shard state machine:
 *
 *     OK --(no heartbeat progress while backlog > 0,
 *            `degraded_after` consecutive samples)--> DEGRADED
 *     DEGRADED --(`stalled_after` total samples)----> STALLED
 *     any --(heartbeat advanced or backlog drained)-> OK
 *
 * Transitions publish to the metrics registry (and therefore the
 * statsboard): `verifier.shard<i>.health` (0=ok 1=degraded 2=stalled),
 * `.heartbeat`, `.queue_depth` (Gauge::max = the high-water mark) and
 * `.ack_age_ns`; they also append `health_change` records to the JSONL
 * event log and the flight recorder. Entering STALLED triggers a
 * flight-recorder dump so the evidence of what the shard did last is
 * preserved before an operator (or the fleet daemon, someday) restarts
 * it.
 *
 * The monitor owns no verifier state: it reads through a Sampler
 * callback, so tests can drive the state machine deterministically with
 * sampleOnce() and scripted samples.
 */

#ifndef HQ_TELEMETRY_HEALTH_H
#define HQ_TELEMETRY_HEALTH_H

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace hq {
namespace telemetry {

class Counter;
class Gauge;

enum class HealthState : int {
    Ok = 0,
    Degraded = 1,
    Stalled = 2,
};

const char *healthStateName(HealthState state);

struct HealthConfig
{
    /** Watchdog sampling period. */
    std::chrono::milliseconds interval{100};
    /** Consecutive no-progress samples (with backlog) before DEGRADED. */
    int degraded_after = 3;
    /** Consecutive no-progress samples (with backlog) before STALLED. */
    int stalled_after = 10;
};

/** What the watchdog sees of one shard at one instant. */
struct ShardHealthSample
{
    std::uint64_t heartbeat = 0;   //!< drain passes since start
    std::uint64_t queue_depth = 0; //!< pending messages across channels
    std::uint64_t ack_age_ns = 0;  //!< ns since last syscall ack (0=never)
};

class HealthMonitor
{
  public:
    using Sampler = std::function<ShardHealthSample(std::size_t shard)>;

    /**
     * @param num_shards shards to watch (gauges registered up front)
     * @param config     thresholds and sampling period
     * @param sampler    reads one shard's live counters; called with the
     *                   sample mutex held, never concurrently
     */
    HealthMonitor(std::size_t num_shards, HealthConfig config,
                  Sampler sampler);
    ~HealthMonitor();

    HealthMonitor(const HealthMonitor &) = delete;
    HealthMonitor &operator=(const HealthMonitor &) = delete;

    /** Start the watchdog thread (idempotent). */
    void start();

    /** Stop and join the watchdog thread (idempotent). */
    void stop();

    /**
     * Take one sample of every shard and advance the state machines on
     * the caller's thread. Deterministic tests call this instead of
     * start(); safe concurrently with a running watchdog.
     */
    void sampleOnce();

    HealthState state(std::size_t shard) const;

    /** Total state transitions published (tests). */
    std::uint64_t transitions() const
    {
        return _transitions.load(std::memory_order_relaxed);
    }

    std::size_t numShards() const { return _shards.size(); }
    const HealthConfig &config() const { return _config; }

  private:
    struct ShardHealth
    {
        std::atomic<int> state{0}; //!< HealthState (readable lock-free)
        std::uint64_t last_heartbeat = 0;
        int bad_samples = 0;
        bool seen = false;
        Gauge *health = nullptr;
        Gauge *heartbeat = nullptr;
        Gauge *queue_depth = nullptr;
        Gauge *ack_age = nullptr;
    };

    void sampleShard(std::size_t index);
    void publishTransition(std::size_t index, HealthState from,
                           HealthState to, const ShardHealthSample &sample);

    HealthConfig _config;
    Sampler _sampler;
    std::vector<std::unique_ptr<ShardHealth>> _shards;
    Counter *_transitions_metric = nullptr;

    mutable std::mutex _sample_mutex;
    std::thread _thread;
    std::atomic<bool> _running{false};
    std::atomic<std::uint64_t> _transitions{0};
};

} // namespace telemetry
} // namespace hq

#endif // HQ_TELEMETRY_HEALTH_H
