#include "telemetry/flight_recorder.h"

#include <fcntl.h>
#include <signal.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <ctime>
#include <mutex>

#include "telemetry/event_log.h"
#include "telemetry/telemetry.h"

namespace hq {
namespace telemetry {
namespace flight {

namespace detail {
std::atomic<bool> g_enabled{false};
} // namespace detail

namespace {

HQ_TELEMETRY_HANDLE(dumpsCounter, Counter, "flight.dumps")

constexpr std::size_t kWordsPerRecord = sizeof(Record) / sizeof(std::uint64_t);

/**
 * One thread's ring. Records live as relaxed-atomic 64-bit words so the
 * dump path may read while the owner writes: the race is benign and
 * defined, and tearing is confined to the slot being overwritten.
 */
struct Ring
{
    std::atomic<std::uint64_t> next{0}; //!< records ever written
    std::atomic<bool> used{false};      //!< ever owned by a thread
    std::atomic<std::uint64_t> words[kRecordsPerThread * kWordsPerRecord];
};

// Static pool: zero-page-backed until a thread actually records.
Ring g_rings[kMaxThreads];
std::atomic<std::uint32_t> g_slot_taken[kMaxThreads];
std::atomic<std::uint64_t> g_dropped_records{0};

/** Claims a ring slot for the thread's lifetime; releases on exit so
 *  short-lived threads recycle slots (their records persist until the
 *  next owner overwrites them). */
struct SlotOwner
{
    int slot = -1;

    SlotOwner()
    {
        for (std::size_t i = 0; i < kMaxThreads; ++i) {
            std::uint32_t expected = 0;
            if (g_slot_taken[i].compare_exchange_strong(
                    expected, 1, std::memory_order_acq_rel)) {
                slot = static_cast<int>(i);
                g_rings[i].used.store(true, std::memory_order_relaxed);
                return;
            }
        }
    }

    ~SlotOwner()
    {
        if (slot >= 0)
            g_slot_taken[slot].store(0, std::memory_order_release);
    }
};

int
threadSlot()
{
    thread_local SlotOwner owner;
    return owner.slot;
}

// --- Dump file state -------------------------------------------------

std::mutex g_dump_mutex;      //!< serializes configure() and dump()
std::atomic<int> g_fd{-1};    //!< kept open for the signal-safe path
std::string g_path;           //!< guarded by g_dump_mutex
std::atomic<std::uint64_t> g_last_dump_ns{0};

// --- Manual formatting (shared by dump() and the signal path) --------
//
// No snprintf: the signal-safe dump may run inside a SIGSEGV handler,
// so every formatter below touches only its arguments and the caller's
// stack buffer.

char *
appendLiteral(char *out, const char *end, const char *text)
{
    while (*text != '\0' && out < end)
        *out++ = *text++;
    return out;
}

char *
appendU64(char *out, const char *end, std::uint64_t value)
{
    char digits[20];
    std::size_t n = 0;
    do {
        digits[n++] = static_cast<char>('0' + value % 10);
        value /= 10;
    } while (value != 0);
    while (n > 0 && out < end)
        *out++ = digits[--n];
    return out;
}

char *
appendI64(char *out, const char *end, std::int64_t value)
{
    if (value < 0) {
        if (out < end)
            *out++ = '-';
        return appendU64(out, end, static_cast<std::uint64_t>(-value));
    }
    return appendU64(out, end, static_cast<std::uint64_t>(value));
}

/** Copy `text` dropping anything that would need JSON escaping. */
char *
appendSanitized(char *out, const char *end, const char *text)
{
    for (; *text != '\0'; ++text) {
        const unsigned char c = static_cast<unsigned char>(*text);
        if (c >= 0x20 && c < 0x7f && c != '"' && c != '\\' && out < end)
            *out++ = static_cast<char>(c);
    }
    return out;
}

/** One `flight_record` JSONL line (keys in fixed schema order). */
std::size_t
formatRecordLine(char *buf, std::size_t cap, const Record &r)
{
    char *out = buf;
    const char *end = buf + cap - 1; // room for '\n'
    out = appendLiteral(out, end, "{\"type\":\"flight_record\",\"ts_ns\":");
    out = appendU64(out, end, r.ts_ns);
    out = appendLiteral(out, end, ",\"thread\":");
    out = appendU64(out, end, r.thread);
    out = appendLiteral(out, end, ",\"seq\":");
    out = appendU64(out, end, r.seq);
    out = appendLiteral(out, end, ",\"subsystem\":\"");
    out = appendSanitized(out, end,
                          subsystemName(static_cast<Subsystem>(r.subsystem)));
    out = appendLiteral(out, end, "\",\"code\":\"");
    out = appendSanitized(out, end, codeName(static_cast<Code>(r.code)));
    out = appendLiteral(out, end, "\",\"pid\":");
    out = appendU64(out, end, r.pid);
    out = appendLiteral(out, end, ",\"shard\":");
    out = appendI64(out, end, r.shard);
    out = appendLiteral(out, end, ",\"arg0\":");
    out = appendU64(out, end, r.arg0);
    out = appendLiteral(out, end, ",\"arg1\":");
    out = appendU64(out, end, r.arg1);
    out = appendLiteral(out, end, "}");
    *out++ = '\n';
    return static_cast<std::size_t>(out - buf);
}

/** One `flight_header` JSONL line. */
std::size_t
formatHeaderLine(char *buf, std::size_t cap, const char *trigger,
                 std::size_t records)
{
    char *out = buf;
    const char *end = buf + cap - 1;
    out = appendLiteral(out, end,
                        "{\"type\":\"flight_header\",\"trigger\":\"");
    out = appendSanitized(out, end, trigger);
    out = appendLiteral(out, end, "\",\"ts_wall_ms\":");
    // time(2) is async-signal-safe; millisecond precision is not needed
    // for a crash header, second granularity keys the join.
    out = appendU64(out, end,
                    static_cast<std::uint64_t>(::time(nullptr)) * 1000u);
    out = appendLiteral(out, end, ",\"pid\":");
    out = appendU64(out, end, static_cast<std::uint64_t>(::getpid()));
    out = appendLiteral(out, end, ",\"records\":");
    out = appendU64(out, end, records);
    out = appendLiteral(out, end, "}");
    *out++ = '\n';
    return static_cast<std::size_t>(out - buf);
}

/** Read one record out of a ring slot (relaxed word loads). */
Record
loadRecord(const Ring &ring, std::size_t index)
{
    std::uint64_t words[kWordsPerRecord];
    const std::size_t base =
        (index & (kRecordsPerThread - 1)) * kWordsPerRecord;
    for (std::size_t w = 0; w < kWordsPerRecord; ++w)
        words[w] = ring.words[base + w].load(std::memory_order_relaxed);
    Record record;
    std::memcpy(&record, words, sizeof(record));
    return record;
}

/** Collect every ring's live records, oldest-first per ring. */
std::vector<Record>
collectRecords()
{
    std::vector<Record> out;
    for (std::size_t i = 0; i < kMaxThreads; ++i) {
        Ring &ring = g_rings[i];
        if (!ring.used.load(std::memory_order_relaxed))
            continue;
        const std::uint64_t cursor =
            ring.next.load(std::memory_order_relaxed);
        const std::uint64_t count =
            std::min<std::uint64_t>(cursor, kRecordsPerThread);
        for (std::uint64_t k = cursor - count; k < cursor; ++k)
            out.push_back(loadRecord(ring, k));
    }
    return out;
}

bool
writeAll(int fd, const char *data, std::size_t len)
{
    while (len > 0) {
        const ssize_t n = ::write(fd, data, len);
        if (n <= 0) {
            if (n < 0 && errno == EINTR)
                continue;
            return false;
        }
        data += n;
        len -= static_cast<std::size_t>(n);
    }
    return true;
}

constexpr std::size_t kLineCap = 320;

} // namespace

namespace detail {

void
record(Subsystem subsystem, Code code, std::uint64_t pid,
       std::int32_t shard, std::uint64_t arg0, std::uint64_t arg1)
{
    const int slot = threadSlot();
    if (slot < 0) {
        g_dropped_records.fetch_add(1, std::memory_order_relaxed);
        return;
    }
    Ring &ring = g_rings[slot];
    const std::uint64_t index =
        ring.next.fetch_add(1, std::memory_order_relaxed);

    Record r;
    r.ts_ns = monotonicRawNs();
    r.seq = index;
    r.pid = pid;
    r.arg0 = arg0;
    r.arg1 = arg1;
    r.subsystem = static_cast<std::uint32_t>(subsystem);
    r.code = static_cast<std::uint32_t>(code);
    r.shard = shard;
    r.thread = static_cast<std::uint32_t>(slot);

    std::uint64_t words[kWordsPerRecord];
    std::memcpy(words, &r, sizeof(r));
    const std::size_t base =
        (index & (kRecordsPerThread - 1)) * kWordsPerRecord;
    for (std::size_t w = 0; w < kWordsPerRecord; ++w)
        ring.words[base + w].store(words[w], std::memory_order_relaxed);
}

} // namespace detail

const char *
subsystemName(Subsystem subsystem)
{
    switch (subsystem) {
      case Subsystem::Verifier:
        return "verifier";
      case Subsystem::Kernel:
        return "kernel";
      case Subsystem::Ipc:
        return "ipc";
      case Subsystem::Fault:
        return "fault";
      case Subsystem::Health:
        return "health";
      case Subsystem::App:
        return "app";
    }
    return "unknown";
}

const char *
codeName(Code code)
{
    switch (code) {
      case Code::DrainBatch:
        return "drain_batch";
      case Code::Violation:
        return "violation";
      case Code::SyscallAck:
        return "syscall_ack";
      case Code::SloBreach:
        return "slo_breach";
      case Code::EpochTimeout:
        return "epoch_timeout";
      case Code::ProcessKilled:
        return "process_killed";
      case Code::SyscallResume:
        return "syscall_resume";
      case Code::FaultInjected:
        return "fault_injected";
      case Code::HealthTransition:
        return "health_transition";
      case Code::Heartbeat:
        return "heartbeat";
      case Code::Custom:
        return "custom";
    }
    return "unknown";
}

void
setEnabled(bool on)
{
    detail::g_enabled.store(on, std::memory_order_relaxed);
}

bool
configure(const std::string &path)
{
    std::lock_guard<std::mutex> guard(g_dump_mutex);
    const int old_fd = g_fd.exchange(-1, std::memory_order_relaxed);
    if (old_fd >= 0)
        ::close(old_fd);
    g_path.clear();
    if (path.empty())
        return true;
    // O_APPEND: the signal-safe path and repeated triggered dumps all
    // append to one per-run stream.
    const int fd =
        ::open(path.c_str(), O_CREAT | O_WRONLY | O_TRUNC | O_APPEND, 0644);
    if (fd < 0)
        return false;
    g_path = path;
    g_fd.store(fd, std::memory_order_relaxed);
    return true;
}

std::string
dumpPath()
{
    std::lock_guard<std::mutex> guard(g_dump_mutex);
    return g_path;
}

std::vector<Record>
snapshot()
{
    std::vector<Record> records = collectRecords();
    std::stable_sort(records.begin(), records.end(),
                     [](const Record &a, const Record &b) {
                         return a.ts_ns < b.ts_ns;
                     });
    return records;
}

std::size_t
dump(const char *trigger)
{
    std::lock_guard<std::mutex> guard(g_dump_mutex);
    const int fd = g_fd.load(std::memory_order_relaxed);
    if (fd < 0)
        return 0;

    std::vector<Record> records = collectRecords();
    std::stable_sort(records.begin(), records.end(),
                     [](const Record &a, const Record &b) {
                         return a.ts_ns < b.ts_ns;
                     });

    std::string out;
    out.reserve((records.size() + 1) * 160);
    char line[kLineCap];
    out.append(line, formatHeaderLine(line, sizeof(line), trigger,
                                      records.size()));
    for (const Record &r : records)
        out.append(line, formatRecordLine(line, sizeof(line), r));
    writeAll(fd, out.data(), out.size());

    dumpsCounter().inc();
    if (EventLog::instance().active()) {
        EventRecord event;
        event.type = EventType::FlightDump;
        event.pid = 0;
        event.arg0 = records.size();
        event.reason = trigger;
        EventLog::instance().append(event);
    }
    return records.size();
}

void
requestDump(const char *trigger)
{
    if (!enabled() || g_fd.load(std::memory_order_relaxed) < 0)
        return;
    constexpr std::uint64_t kMinGapNs = 1'000'000'000; // 1 dump/sec
    const std::uint64_t now = monotonicRawNs();
    std::uint64_t last = g_last_dump_ns.load(std::memory_order_relaxed);
    if (last != 0 && now - last < kMinGapNs)
        return;
    // One requester wins the window; the losers' triggers were within
    // the last second of the dump that does land.
    if (!g_last_dump_ns.compare_exchange_strong(last, now,
                                                std::memory_order_relaxed))
        return;
    dump(trigger);
}

void
dumpSignalSafe(int fd, const char *trigger)
{
    if (fd < 0)
        return;
    char line[kLineCap];
    std::size_t total = 0;
    for (std::size_t i = 0; i < kMaxThreads; ++i) {
        const Ring &ring = g_rings[i];
        if (!ring.used.load(std::memory_order_relaxed))
            continue;
        const std::uint64_t cursor =
            ring.next.load(std::memory_order_relaxed);
        total += static_cast<std::size_t>(
            std::min<std::uint64_t>(cursor, kRecordsPerThread));
    }
    writeAll(fd, line, formatHeaderLine(line, sizeof(line), trigger, total));
    for (std::size_t i = 0; i < kMaxThreads; ++i) {
        const Ring &ring = g_rings[i];
        if (!ring.used.load(std::memory_order_relaxed))
            continue;
        const std::uint64_t cursor =
            ring.next.load(std::memory_order_relaxed);
        const std::uint64_t count =
            std::min<std::uint64_t>(cursor, kRecordsPerThread);
        for (std::uint64_t k = cursor - count; k < cursor; ++k) {
            const Record r = loadRecord(ring, k);
            writeAll(fd, line, formatRecordLine(line, sizeof(line), r));
        }
    }
}

namespace {

extern "C" void
fatalSignalHandler(int signum)
{
    const int fd = g_fd.load(std::memory_order_relaxed);
    if (fd >= 0)
        dumpSignalSafe(fd, "fatal signal");
    // SA_RESETHAND restored the default disposition; re-raise so the
    // process still dies with the original signal (core dumps intact).
    ::raise(signum);
}

} // namespace

void
installFatalSignalDump()
{
    struct sigaction action;
    std::memset(&action, 0, sizeof(action));
    action.sa_handler = fatalSignalHandler;
    action.sa_flags = SA_RESETHAND | SA_NODEFER;
    sigemptyset(&action.sa_mask);
    for (int signum : {SIGSEGV, SIGBUS, SIGILL, SIGFPE, SIGABRT})
        ::sigaction(signum, &action, nullptr);
}

void
resetForTest()
{
    std::lock_guard<std::mutex> guard(g_dump_mutex);
    for (std::size_t i = 0; i < kMaxThreads; ++i) {
        Ring &ring = g_rings[i];
        if (!ring.used.load(std::memory_order_relaxed))
            continue;
        ring.next.store(0, std::memory_order_relaxed);
        for (auto &word : ring.words)
            word.store(0, std::memory_order_relaxed);
    }
    g_dropped_records.store(0, std::memory_order_relaxed);
    g_last_dump_ns.store(0, std::memory_order_relaxed);
}

} // namespace flight
} // namespace telemetry
} // namespace hq
