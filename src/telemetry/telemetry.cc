#include "telemetry/telemetry.h"

#include <unistd.h>

#include <algorithm>
#include <bit>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <utility>
#include <vector>

#include "telemetry/event_log.h"
#include "telemetry/flight_recorder.h"
#include "telemetry/statsboard.h"
#include "telemetry/trace.h"

namespace hq {
namespace telemetry {

namespace detail {
std::atomic<bool> g_enabled{false};
} // namespace detail

void
setEnabled(bool on)
{
    detail::g_enabled.store(on, std::memory_order_relaxed);
}

std::uint64_t
nowNs()
{
    using Clock = std::chrono::steady_clock;
    static const Clock::time_point epoch = Clock::now();
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                             epoch)
            .count());
}

std::uint64_t
monotonicRawNs()
{
    // No process-local epoch: steady_clock is CLOCK_MONOTONIC, whose
    // base is machine-wide, so a stamp taken in a forked child is
    // directly comparable in the parent.
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

// --- Histogram -------------------------------------------------------

namespace {

/** Bucket index for a sample: 0 for 0, else floor(log2)+1, capped. */
int
bucketIndex(std::uint64_t value)
{
    if (value == 0)
        return 0;
    const int width = std::bit_width(value);
    return std::min(width, Histogram::kBuckets - 1);
}

/** Inclusive value range covered by bucket i. */
void
bucketRange(int index, double &lo, double &hi)
{
    if (index == 0) {
        lo = 0.0;
        hi = 1.0;
        return;
    }
    lo = std::ldexp(1.0, index - 1); // 2^(i-1)
    hi = std::ldexp(1.0, index);     // 2^i
}

} // namespace

void
Histogram::record(std::uint64_t value)
{
    std::lock_guard<std::mutex> guard(_mutex);
    ++_buckets[bucketIndex(value)];
    _stat.add(static_cast<double>(value));
}

void
Histogram::record(std::uint64_t value, std::uint64_t repeat)
{
    if (repeat == 0)
        return;
    std::lock_guard<std::mutex> guard(_mutex);
    _buckets[bucketIndex(value)] += repeat;
    _stat.addRepeated(static_cast<double>(value), repeat);
}

std::uint64_t
Histogram::count() const
{
    std::lock_guard<std::mutex> guard(_mutex);
    return _stat.count();
}

double
Histogram::percentile(double p) const
{
    std::lock_guard<std::mutex> guard(_mutex);
    const std::uint64_t total = _stat.count();
    if (total == 0)
        return 0.0;
    p = std::clamp(p, 0.0, 100.0);
    // Rank of the percentile sample, 1-based (nearest-rank method).
    const std::uint64_t target = std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(
               std::ceil(p / 100.0 * static_cast<double>(total))));

    std::uint64_t cumulative = 0;
    for (int i = 0; i < kBuckets; ++i) {
        if (_buckets[i] == 0)
            continue;
        if (cumulative + _buckets[i] >= target) {
            double lo = 0.0, hi = 0.0;
            bucketRange(i, lo, hi);
            // Interpolate by rank within the bucket, then clamp to the
            // exactly-tracked extrema so outputs never exceed samples.
            // The buckets are log2 ranges, so the interpolation is
            // geometric — lo * (hi/lo)^frac — which is unbiased for an
            // exponential bucket; the arithmetic (linear) form skews
            // toward the bucket floor and under-reports p99. Bucket 0
            // starts at zero, where the geometric form degenerates, so
            // it keeps the linear ramp.
            const double frac =
                static_cast<double>(target - cumulative) /
                static_cast<double>(_buckets[i]);
            const double value =
                lo > 0.0 ? lo * std::pow(hi / lo, frac)
                         : lo + frac * (hi - lo);
            return std::clamp(value, _stat.min(), _stat.max());
        }
        cumulative += _buckets[i];
    }
    return _stat.max(); // unreachable unless counts raced; be safe
}

double
Histogram::mean() const
{
    std::lock_guard<std::mutex> guard(_mutex);
    return _stat.mean();
}

double
Histogram::stddev() const
{
    std::lock_guard<std::mutex> guard(_mutex);
    return _stat.stddev();
}

double
Histogram::min() const
{
    std::lock_guard<std::mutex> guard(_mutex);
    return _stat.min();
}

double
Histogram::max() const
{
    std::lock_guard<std::mutex> guard(_mutex);
    return _stat.max();
}

std::array<std::uint64_t, Histogram::kBuckets>
Histogram::buckets() const
{
    std::lock_guard<std::mutex> guard(_mutex);
    return _buckets;
}

void
Histogram::reset()
{
    std::lock_guard<std::mutex> guard(_mutex);
    _buckets.fill(0);
    _stat = RunningStat{};
}

// --- Registry --------------------------------------------------------

Registry::Registry()
{
    // Pre-register the well-known hot-path metrics so every telemetry
    // dump carries them (empty or not) and consumers can rely on the
    // keys being present.
    for (const char *name :
         {"verifier.msg_latency_ns", "verifier.lag_ns",
          "kernel.syscall_pause_ns", "fpga.append_ns"}) {
        _histograms.emplace(name, std::make_unique<Histogram>());
    }
    for (const char *name :
         {"verifier.messages", "verifier.violations",
          "verifier.syscall_acks", "verifier.idle_sleeps",
          "verifier.lag_slo_breaches",
          "kernel.syscalls",
          "kernel.epoch_timeouts", "ipc.ring_push_fail",
          "ipc.xproc_full_waits", "ipc.lag_stamp_dropped",
          "fpga.messages", "fpga.dropped",
          "vm.instructions", "vm.instrumentation_ops",
          "statsboard.publishes", "eventlog.records"}) {
        _counters.emplace(name, std::make_unique<Counter>());
    }
    for (const char *name : {"ipc.ring_occupancy", "ipc.xproc_occupancy",
                             "verifier.policy_entries",
                             "verifier.lag_high_water_ns"}) {
        _gauges.emplace(name, std::make_unique<Gauge>());
    }
}

Registry &
Registry::instance()
{
    static Registry registry;
    return registry;
}

Counter &
Registry::counter(const std::string &name)
{
    std::lock_guard<std::mutex> guard(_mutex);
    auto &slot = _counters[name];
    if (!slot)
        slot = std::make_unique<Counter>();
    return *slot;
}

Gauge &
Registry::gauge(const std::string &name)
{
    std::lock_guard<std::mutex> guard(_mutex);
    auto &slot = _gauges[name];
    if (!slot)
        slot = std::make_unique<Gauge>();
    return *slot;
}

Histogram &
Registry::histogram(const std::string &name)
{
    std::lock_guard<std::mutex> guard(_mutex);
    auto &slot = _histograms[name];
    if (!slot)
        slot = std::make_unique<Histogram>();
    return *slot;
}

namespace {

void
appendJsonString(std::ostringstream &os, const std::string &text)
{
    os << '"';
    for (char c : text) {
        switch (c) {
          case '"':
            os << "\\\"";
            break;
          case '\\':
            os << "\\\\";
            break;
          case '\n':
            os << "\\n";
            break;
          case '\t':
            os << "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                os << buf;
            } else {
                os << c;
            }
        }
    }
    os << '"';
}

void
appendDouble(std::ostringstream &os, double value)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.6g", value);
    os << buf;
}

} // namespace

std::string
Registry::toJson() const
{
    std::lock_guard<std::mutex> guard(_mutex);
    std::ostringstream os;
    os << "{\"counters\":{";
    bool first = true;
    for (const auto &[name, counter] : _counters) {
        if (!first)
            os << ",";
        first = false;
        appendJsonString(os, name);
        os << ":" << counter->value();
    }
    os << "},\"gauges\":{";
    first = true;
    for (const auto &[name, gauge] : _gauges) {
        if (!first)
            os << ",";
        first = false;
        appendJsonString(os, name);
        os << ":{\"value\":" << gauge->value() << ",\"max\":"
           << gauge->max() << "}";
    }
    os << "},\"histograms\":{";
    first = true;
    for (const auto &[name, histogram] : _histograms) {
        if (!first)
            os << ",";
        first = false;
        appendJsonString(os, name);
        os << ":{\"count\":" << histogram->count() << ",\"mean\":";
        appendDouble(os, histogram->mean());
        os << ",\"stddev\":";
        appendDouble(os, histogram->stddev());
        os << ",\"min\":";
        appendDouble(os, histogram->min());
        os << ",\"max\":";
        appendDouble(os, histogram->max());
        os << ",\"p50\":";
        appendDouble(os, histogram->percentile(50));
        os << ",\"p90\":";
        appendDouble(os, histogram->percentile(90));
        os << ",\"p99\":";
        appendDouble(os, histogram->percentile(99));
        os << ",\"buckets\":[";
        const auto buckets = histogram->buckets();
        for (int i = 0; i < Histogram::kBuckets; ++i) {
            if (i)
                os << ",";
            os << buckets[i];
        }
        os << "]}";
    }
    os << "}}";
    return os.str();
}

// --- Prometheus text exposition --------------------------------------

namespace {

bool
allDigits(const std::string &text, std::size_t from)
{
    if (from >= text.size())
        return false;
    for (std::size_t i = from; i < text.size(); ++i) {
        if (text[i] < '0' || text[i] > '9')
            return false;
    }
    return true;
}

void
appendSanitizedComponent(std::string &name, const std::string &component)
{
    name += '_';
    for (char c : component) {
        const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                        (c >= '0' && c <= '9') || c == '_';
        name += ok ? c : '_';
    }
}

void
appendLabel(std::string &labels, const char *key,
            const std::string &value)
{
    if (!labels.empty())
        labels += ',';
    labels += key;
    labels += "=\"";
    labels += value;
    labels += '"';
}

std::string
promDouble(double value)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.10g", value);
    return buf;
}

/** Accumulates samples grouped per family so each `# TYPE` line is
 *  emitted exactly once even when many labeled series share it. */
struct PromWriter
{
    // family -> exposition type; map keeps the output name-ordered.
    std::map<std::string, const char *> types;
    std::map<std::string, std::vector<std::string>> samples;

    /** One sample line; `name` may extend family (e.g. `_sum`). */
    void
    add(const std::string &family, const char *type,
        const std::string &name, const std::string &labels,
        const std::string &value)
    {
        types.emplace(family, type);
        std::string line = name;
        if (!labels.empty())
            line += '{' + labels + '}';
        line += ' ';
        line += value;
        line += '\n';
        samples[family].push_back(std::move(line));
    }

    std::string
    str() const
    {
        std::string out;
        for (const auto &[family, type] : types) {
            out += "# TYPE ";
            out += family;
            out += ' ';
            out += type;
            out += '\n';
            auto it = samples.find(family);
            if (it != samples.end()) {
                for (const std::string &line : it->second)
                    out += line;
            }
        }
        return out;
    }
};

} // namespace

PromSeries
prometheusSeries(const std::string &metric)
{
    PromSeries out;
    out.name = "hq";
    std::size_t start = 0;
    while (start <= metric.size()) {
        const std::size_t dot = metric.find('.', start);
        const std::size_t len =
            (dot == std::string::npos ? metric.size() : dot) - start;
        const std::string component = metric.substr(start, len);
        if (component.rfind("shard", 0) == 0 &&
            allDigits(component, 5)) {
            appendLabel(out.labels, "shard", component.substr(5));
        } else if (component.rfind("pid_", 0) == 0 &&
                   allDigits(component, 4)) {
            appendLabel(out.labels, "pid", component.substr(4));
        } else if (!component.empty()) {
            appendSanitizedComponent(out.name, component);
        }
        if (dot == std::string::npos)
            break;
        start = dot + 1;
    }
    return out;
}

std::string
Registry::toPrometheus() const
{
    std::lock_guard<std::mutex> guard(_mutex);
    PromWriter writer;
    for (const auto &[name, counter] : _counters) {
        const PromSeries series = prometheusSeries(name);
        const std::string family = series.name + "_total";
        writer.add(family, "counter", family, series.labels,
                   std::to_string(counter->value()));
    }
    for (const auto &[name, gauge] : _gauges) {
        const PromSeries series = prometheusSeries(name);
        writer.add(series.name, "gauge", series.name, series.labels,
                   std::to_string(gauge->value()));
        const std::string family = series.name + "_max";
        writer.add(family, "gauge", family, series.labels,
                   std::to_string(gauge->max()));
    }
    for (const auto &[name, histogram] : _histograms) {
        const PromSeries series = prometheusSeries(name);
        const std::uint64_t count = histogram->count();
        if (count != 0) {
            static constexpr std::pair<const char *, double> kQuantiles[] =
                {{"0.5", 50.0}, {"0.9", 90.0}, {"0.99", 99.0}};
            for (const auto &[q, p] : kQuantiles) {
                std::string labels = series.labels;
                appendLabel(labels, "quantile", q);
                writer.add(series.name, "summary", series.name, labels,
                           promDouble(histogram->percentile(p)));
            }
        }
        writer.add(series.name, "summary", series.name + "_sum",
                   series.labels,
                   promDouble(histogram->mean() *
                              static_cast<double>(count)));
        writer.add(series.name, "summary", series.name + "_count",
                   series.labels, std::to_string(count));
    }
    return writer.str();
}

void
Registry::forEachCounter(
    const std::function<void(const std::string &, const Counter &)>
        &visit) const
{
    std::lock_guard<std::mutex> guard(_mutex);
    for (const auto &[name, counter] : _counters)
        visit(name, *counter);
}

void
Registry::forEachGauge(
    const std::function<void(const std::string &, const Gauge &)> &visit)
    const
{
    std::lock_guard<std::mutex> guard(_mutex);
    for (const auto &[name, gauge] : _gauges)
        visit(name, *gauge);
}

void
Registry::forEachHistogram(
    const std::function<void(const std::string &, const Histogram &)>
        &visit) const
{
    std::lock_guard<std::mutex> guard(_mutex);
    for (const auto &[name, histogram] : _histograms)
        visit(name, *histogram);
}

void
Registry::reset()
{
    std::lock_guard<std::mutex> guard(_mutex);
    for (auto &[name, counter] : _counters)
        counter->reset();
    for (auto &[name, gauge] : _gauges)
        gauge->reset();
    for (auto &[name, histogram] : _histograms)
        histogram->reset();
}

// --- Export ----------------------------------------------------------

bool
writeJsonFile(const std::string &path)
{
    std::ofstream out(path);
    if (!out)
        return false;
    out << "{\"metrics\":" << Registry::instance().toJson()
        << ",\"traceEvents\":" << TraceRecorder::instance().toJson()
        << ",\"displayTimeUnit\":\"ns\"}\n";
    return out.good();
}

namespace {

std::string g_out_path;
std::unique_ptr<StatsPublisher> g_publisher;

void
flushAtExit()
{
    // Stop the statsboard publisher first so its final snapshot lands
    // before (and its segment disappears with) the exit dump.
    if (g_publisher) {
        g_publisher->stop();
        g_publisher.reset();
    }
    // Final flight dump before the event log closes, so the paired
    // flight_dump record still lands in the JSONL stream.
    if (flight::enabled())
        flight::dump("exit");
    EventLog::instance().close();
    if (g_out_path.empty())
        return;
    if (writeJsonFile(g_out_path))
        std::fprintf(stderr, "telemetry: wrote %s\n", g_out_path.c_str());
    else
        std::fprintf(stderr, "telemetry: failed to write %s\n",
                     g_out_path.c_str());
}

} // namespace

void
handleBenchArgs(int &argc, char **argv)
{
    const std::string kOutFlag = "--telemetry-out=";
    const std::string kEventLogFlag = "--event-log=";
    const std::string kStatsBoardFlag = "--statsboard";
    const std::string kFlightFlag = "--flight-recorder";
    bool enable = false;
    std::string event_log_path;
    bool statsboard = false;
    std::string statsboard_name;
    bool flight_recorder = false;
    std::string flight_path;
    int out = 1;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind(kOutFlag, 0) == 0) {
            g_out_path = arg.substr(kOutFlag.size());
            enable = true;
        } else if (arg == "--telemetry") {
            enable = true;
        } else if (arg.rfind(kEventLogFlag, 0) == 0) {
            event_log_path = arg.substr(kEventLogFlag.size());
            enable = true;
        } else if (arg.rfind(kStatsBoardFlag, 0) == 0 &&
                   (arg.size() == kStatsBoardFlag.size() ||
                    arg[kStatsBoardFlag.size()] == '=')) {
            statsboard = true;
            enable = true;
            if (arg.size() > kStatsBoardFlag.size() + 1)
                statsboard_name = arg.substr(kStatsBoardFlag.size() + 1);
        } else if (arg.rfind(kFlightFlag, 0) == 0 &&
                   (arg.size() == kFlightFlag.size() ||
                    arg[kFlightFlag.size()] == '=')) {
            flight_recorder = true;
            enable = true;
            if (arg.size() > kFlightFlag.size() + 1)
                flight_path = arg.substr(kFlightFlag.size() + 1);
        } else {
            argv[out++] = argv[i];
        }
    }
    argc = out;
    argv[argc] = nullptr;
    if (!enable)
        return;
    // Materialize the singletons *before* registering the atexit hook,
    // so their (atexit-ordered) destructors run after the flush.
    Registry::instance();
    TraceRecorder::instance();
    setEnabled(true);
    if (!event_log_path.empty() &&
        !EventLog::instance().open(event_log_path)) {
        std::fprintf(stderr, "telemetry: failed to open event log %s\n",
                     event_log_path.c_str());
    }
    if (statsboard) {
        g_publisher = std::make_unique<StatsPublisher>(
            statsboard_name.empty() ? StatsBoardWriter::defaultName()
                                    : statsboard_name);
        if (g_publisher->valid()) {
            g_publisher->start();
            std::fprintf(stderr, "telemetry: statsboard at %s\n",
                         g_publisher->name().c_str());
        }
    }
    if (flight_recorder) {
        if (flight_path.empty())
            flight_path = "flight." + std::to_string(::getpid()) + ".jsonl";
        if (flight::configure(flight_path)) {
            flight::setEnabled(true);
            flight::installFatalSignalDump();
            std::fprintf(stderr, "telemetry: flight recorder -> %s\n",
                         flight_path.c_str());
        } else {
            std::fprintf(stderr,
                         "telemetry: failed to open flight dump %s\n",
                         flight_path.c_str());
        }
    }
    std::atexit(flushAtExit);
}

} // namespace telemetry
} // namespace hq
