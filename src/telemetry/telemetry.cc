#include "telemetry/telemetry.h"

#include <algorithm>
#include <bit>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "telemetry/event_log.h"
#include "telemetry/statsboard.h"
#include "telemetry/trace.h"

namespace hq {
namespace telemetry {

namespace detail {
std::atomic<bool> g_enabled{false};
} // namespace detail

void
setEnabled(bool on)
{
    detail::g_enabled.store(on, std::memory_order_relaxed);
}

std::uint64_t
nowNs()
{
    using Clock = std::chrono::steady_clock;
    static const Clock::time_point epoch = Clock::now();
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                             epoch)
            .count());
}

std::uint64_t
monotonicRawNs()
{
    // No process-local epoch: steady_clock is CLOCK_MONOTONIC, whose
    // base is machine-wide, so a stamp taken in a forked child is
    // directly comparable in the parent.
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

// --- Histogram -------------------------------------------------------

namespace {

/** Bucket index for a sample: 0 for 0, else floor(log2)+1, capped. */
int
bucketIndex(std::uint64_t value)
{
    if (value == 0)
        return 0;
    const int width = std::bit_width(value);
    return std::min(width, Histogram::kBuckets - 1);
}

/** Inclusive value range covered by bucket i. */
void
bucketRange(int index, double &lo, double &hi)
{
    if (index == 0) {
        lo = 0.0;
        hi = 1.0;
        return;
    }
    lo = std::ldexp(1.0, index - 1); // 2^(i-1)
    hi = std::ldexp(1.0, index);     // 2^i
}

} // namespace

void
Histogram::record(std::uint64_t value)
{
    std::lock_guard<std::mutex> guard(_mutex);
    ++_buckets[bucketIndex(value)];
    _stat.add(static_cast<double>(value));
}

void
Histogram::record(std::uint64_t value, std::uint64_t repeat)
{
    if (repeat == 0)
        return;
    std::lock_guard<std::mutex> guard(_mutex);
    _buckets[bucketIndex(value)] += repeat;
    _stat.addRepeated(static_cast<double>(value), repeat);
}

std::uint64_t
Histogram::count() const
{
    std::lock_guard<std::mutex> guard(_mutex);
    return _stat.count();
}

double
Histogram::percentile(double p) const
{
    std::lock_guard<std::mutex> guard(_mutex);
    const std::uint64_t total = _stat.count();
    if (total == 0)
        return 0.0;
    p = std::clamp(p, 0.0, 100.0);
    // Rank of the percentile sample, 1-based (nearest-rank method).
    const std::uint64_t target = std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(
               std::ceil(p / 100.0 * static_cast<double>(total))));

    std::uint64_t cumulative = 0;
    for (int i = 0; i < kBuckets; ++i) {
        if (_buckets[i] == 0)
            continue;
        if (cumulative + _buckets[i] >= target) {
            double lo = 0.0, hi = 0.0;
            bucketRange(i, lo, hi);
            // Interpolate by rank within the bucket, then clamp to the
            // exactly-tracked extrema so outputs never exceed samples.
            const double frac =
                static_cast<double>(target - cumulative) /
                static_cast<double>(_buckets[i]);
            const double value = lo + frac * (hi - lo);
            return std::clamp(value, _stat.min(), _stat.max());
        }
        cumulative += _buckets[i];
    }
    return _stat.max(); // unreachable unless counts raced; be safe
}

double
Histogram::mean() const
{
    std::lock_guard<std::mutex> guard(_mutex);
    return _stat.mean();
}

double
Histogram::stddev() const
{
    std::lock_guard<std::mutex> guard(_mutex);
    return _stat.stddev();
}

double
Histogram::min() const
{
    std::lock_guard<std::mutex> guard(_mutex);
    return _stat.min();
}

double
Histogram::max() const
{
    std::lock_guard<std::mutex> guard(_mutex);
    return _stat.max();
}

std::array<std::uint64_t, Histogram::kBuckets>
Histogram::buckets() const
{
    std::lock_guard<std::mutex> guard(_mutex);
    return _buckets;
}

void
Histogram::reset()
{
    std::lock_guard<std::mutex> guard(_mutex);
    _buckets.fill(0);
    _stat = RunningStat{};
}

// --- Registry --------------------------------------------------------

Registry::Registry()
{
    // Pre-register the well-known hot-path metrics so every telemetry
    // dump carries them (empty or not) and consumers can rely on the
    // keys being present.
    for (const char *name :
         {"verifier.msg_latency_ns", "verifier.lag_ns",
          "kernel.syscall_pause_ns", "fpga.append_ns"}) {
        _histograms.emplace(name, std::make_unique<Histogram>());
    }
    for (const char *name :
         {"verifier.messages", "verifier.violations",
          "verifier.syscall_acks", "verifier.idle_sleeps",
          "verifier.lag_slo_breaches",
          "kernel.syscalls",
          "kernel.epoch_timeouts", "ipc.ring_push_fail",
          "ipc.xproc_full_waits", "ipc.lag_stamp_dropped",
          "fpga.messages", "fpga.dropped",
          "vm.instructions", "vm.instrumentation_ops",
          "statsboard.publishes", "eventlog.records"}) {
        _counters.emplace(name, std::make_unique<Counter>());
    }
    for (const char *name : {"ipc.ring_occupancy", "ipc.xproc_occupancy",
                             "verifier.policy_entries",
                             "verifier.lag_high_water_ns"}) {
        _gauges.emplace(name, std::make_unique<Gauge>());
    }
}

Registry &
Registry::instance()
{
    static Registry registry;
    return registry;
}

Counter &
Registry::counter(const std::string &name)
{
    std::lock_guard<std::mutex> guard(_mutex);
    auto &slot = _counters[name];
    if (!slot)
        slot = std::make_unique<Counter>();
    return *slot;
}

Gauge &
Registry::gauge(const std::string &name)
{
    std::lock_guard<std::mutex> guard(_mutex);
    auto &slot = _gauges[name];
    if (!slot)
        slot = std::make_unique<Gauge>();
    return *slot;
}

Histogram &
Registry::histogram(const std::string &name)
{
    std::lock_guard<std::mutex> guard(_mutex);
    auto &slot = _histograms[name];
    if (!slot)
        slot = std::make_unique<Histogram>();
    return *slot;
}

namespace {

void
appendJsonString(std::ostringstream &os, const std::string &text)
{
    os << '"';
    for (char c : text) {
        switch (c) {
          case '"':
            os << "\\\"";
            break;
          case '\\':
            os << "\\\\";
            break;
          case '\n':
            os << "\\n";
            break;
          case '\t':
            os << "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                os << buf;
            } else {
                os << c;
            }
        }
    }
    os << '"';
}

void
appendDouble(std::ostringstream &os, double value)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.6g", value);
    os << buf;
}

} // namespace

std::string
Registry::toJson() const
{
    std::lock_guard<std::mutex> guard(_mutex);
    std::ostringstream os;
    os << "{\"counters\":{";
    bool first = true;
    for (const auto &[name, counter] : _counters) {
        if (!first)
            os << ",";
        first = false;
        appendJsonString(os, name);
        os << ":" << counter->value();
    }
    os << "},\"gauges\":{";
    first = true;
    for (const auto &[name, gauge] : _gauges) {
        if (!first)
            os << ",";
        first = false;
        appendJsonString(os, name);
        os << ":{\"value\":" << gauge->value() << ",\"max\":"
           << gauge->max() << "}";
    }
    os << "},\"histograms\":{";
    first = true;
    for (const auto &[name, histogram] : _histograms) {
        if (!first)
            os << ",";
        first = false;
        appendJsonString(os, name);
        os << ":{\"count\":" << histogram->count() << ",\"mean\":";
        appendDouble(os, histogram->mean());
        os << ",\"stddev\":";
        appendDouble(os, histogram->stddev());
        os << ",\"min\":";
        appendDouble(os, histogram->min());
        os << ",\"max\":";
        appendDouble(os, histogram->max());
        os << ",\"p50\":";
        appendDouble(os, histogram->percentile(50));
        os << ",\"p90\":";
        appendDouble(os, histogram->percentile(90));
        os << ",\"p99\":";
        appendDouble(os, histogram->percentile(99));
        os << ",\"buckets\":[";
        const auto buckets = histogram->buckets();
        for (int i = 0; i < Histogram::kBuckets; ++i) {
            if (i)
                os << ",";
            os << buckets[i];
        }
        os << "]}";
    }
    os << "}}";
    return os.str();
}

void
Registry::forEachCounter(
    const std::function<void(const std::string &, const Counter &)>
        &visit) const
{
    std::lock_guard<std::mutex> guard(_mutex);
    for (const auto &[name, counter] : _counters)
        visit(name, *counter);
}

void
Registry::forEachGauge(
    const std::function<void(const std::string &, const Gauge &)> &visit)
    const
{
    std::lock_guard<std::mutex> guard(_mutex);
    for (const auto &[name, gauge] : _gauges)
        visit(name, *gauge);
}

void
Registry::forEachHistogram(
    const std::function<void(const std::string &, const Histogram &)>
        &visit) const
{
    std::lock_guard<std::mutex> guard(_mutex);
    for (const auto &[name, histogram] : _histograms)
        visit(name, *histogram);
}

void
Registry::reset()
{
    std::lock_guard<std::mutex> guard(_mutex);
    for (auto &[name, counter] : _counters)
        counter->reset();
    for (auto &[name, gauge] : _gauges)
        gauge->reset();
    for (auto &[name, histogram] : _histograms)
        histogram->reset();
}

// --- Export ----------------------------------------------------------

bool
writeJsonFile(const std::string &path)
{
    std::ofstream out(path);
    if (!out)
        return false;
    out << "{\"metrics\":" << Registry::instance().toJson()
        << ",\"traceEvents\":" << TraceRecorder::instance().toJson()
        << ",\"displayTimeUnit\":\"ns\"}\n";
    return out.good();
}

namespace {

std::string g_out_path;
std::unique_ptr<StatsPublisher> g_publisher;

void
flushAtExit()
{
    // Stop the statsboard publisher first so its final snapshot lands
    // before (and its segment disappears with) the exit dump.
    if (g_publisher) {
        g_publisher->stop();
        g_publisher.reset();
    }
    EventLog::instance().close();
    if (g_out_path.empty())
        return;
    if (writeJsonFile(g_out_path))
        std::fprintf(stderr, "telemetry: wrote %s\n", g_out_path.c_str());
    else
        std::fprintf(stderr, "telemetry: failed to write %s\n",
                     g_out_path.c_str());
}

} // namespace

void
handleBenchArgs(int &argc, char **argv)
{
    const std::string kOutFlag = "--telemetry-out=";
    const std::string kEventLogFlag = "--event-log=";
    const std::string kStatsBoardFlag = "--statsboard";
    bool enable = false;
    std::string event_log_path;
    bool statsboard = false;
    std::string statsboard_name;
    int out = 1;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind(kOutFlag, 0) == 0) {
            g_out_path = arg.substr(kOutFlag.size());
            enable = true;
        } else if (arg == "--telemetry") {
            enable = true;
        } else if (arg.rfind(kEventLogFlag, 0) == 0) {
            event_log_path = arg.substr(kEventLogFlag.size());
            enable = true;
        } else if (arg.rfind(kStatsBoardFlag, 0) == 0 &&
                   (arg.size() == kStatsBoardFlag.size() ||
                    arg[kStatsBoardFlag.size()] == '=')) {
            statsboard = true;
            enable = true;
            if (arg.size() > kStatsBoardFlag.size() + 1)
                statsboard_name = arg.substr(kStatsBoardFlag.size() + 1);
        } else {
            argv[out++] = argv[i];
        }
    }
    argc = out;
    argv[argc] = nullptr;
    if (!enable)
        return;
    // Materialize the singletons *before* registering the atexit hook,
    // so their (atexit-ordered) destructors run after the flush.
    Registry::instance();
    TraceRecorder::instance();
    setEnabled(true);
    if (!event_log_path.empty() &&
        !EventLog::instance().open(event_log_path)) {
        std::fprintf(stderr, "telemetry: failed to open event log %s\n",
                     event_log_path.c_str());
    }
    if (statsboard) {
        g_publisher = std::make_unique<StatsPublisher>(
            statsboard_name.empty() ? StatsBoardWriter::defaultName()
                                    : statsboard_name);
        if (g_publisher->valid()) {
            g_publisher->start();
            std::fprintf(stderr, "telemetry: statsboard at %s\n",
                         g_publisher->name().c_str());
        }
    }
    std::atexit(flushAtExit);
}

} // namespace telemetry
} // namespace hq
