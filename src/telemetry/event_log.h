/**
 * @file
 * Structured JSONL audit stream — the machine-readable counterpart of
 * the paper's correctness evidence (Tables 4/5).
 *
 * When opened (`--event-log=FILE`), every security-relevant event is
 * appended as one self-contained JSON object per line: policy
 * violations, message-sequence gaps (FPGA integrity check),
 * synchronization-epoch timeouts (§3.3), and ring drops (the AFU has no
 * back-pressure). Each record carries the pid, opcode and arguments of
 * the offending message where one exists, the measured verification
 * lag, and both wall-clock and monotonic timestamps, so a run's
 * violation log can be joined against its telemetry trace.
 *
 * The log is inert until opened: producers pay one relaxed atomic load.
 * Appends are mutex-serialized (violations are rare by construction —
 * a monitored program is killed or already compromised when they
 * fire), and the stream is flushed per record so a killed process
 * leaves a complete audit trail.
 */

#ifndef HQ_TELEMETRY_EVENT_LOG_H
#define HQ_TELEMETRY_EVENT_LOG_H

#include <atomic>
#include <cstdint>
#include <fstream>
#include <mutex>
#include <string>

#include "common/types.h"

namespace hq {
namespace telemetry {

/** Kinds of audited events (the JSONL "type" field). */
enum class EventType {
    Violation,    //!< failed policy check
    SeqGap,       //!< FPGA sequence-counter gap (dropped messages)
    EpochTimeout, //!< no sync message within the kernel epoch
    RingDrop,     //!< message lost to a full no-back-pressure buffer
    CorruptMsg,   //!< message failed its CRC guard (bit-flip detected)
    VerifierRestart, //!< verifier re-attached and replayed live pids
    SilentAccept, //!< injected fault class with no detector fired (audit)
    HealthChange, //!< shard health state transition (watchdog)
    FlightDump,   //!< flight-recorder dump written (reason = trigger)
    SpecKill,     //!< kill landed inside the speculation window
                  //!< (arg0 = unacked depth, arg1 = configured window)
};

const char *eventTypeName(EventType type);

/** One audited event; fields without a value are emitted as 0/"". */
struct EventRecord
{
    EventType type = EventType::Violation;
    Pid pid = 0;
    /// Verifier shard that owns pid's state (-1 when the emitter is not
    /// the verifier — e.g. ring drops observed device-side).
    std::int32_t shard = -1;
    /// Policy family that raised a violation verdict ("cfi", "ifc",
    /// ...); "transport" for integrity failures (CRC, seq gap); "" when
    /// the event is not a verdict at all.
    std::string policy;
    std::string op; //!< opcode name of the offending message ("" = none)
    std::uint64_t arg0 = 0;
    std::uint64_t arg1 = 0;
    std::uint32_t seq = 0;
    std::uint64_t lag_ns = 0; //!< verification lag when known
    std::string reason;
};

/**
 * Process-global JSONL sink. open() activates it; append() is a no-op
 * (one relaxed load) while inactive.
 */
class EventLog
{
  public:
    static EventLog &instance();

    /** Open (truncate) the sink; activates logging. */
    bool open(const std::string &path);

    /** Flush and deactivate. Safe to call when never opened. */
    void close();

    bool
    active() const
    {
        return _active.load(std::memory_order_relaxed);
    }

    /** Append one record as a JSON line (no-op while inactive). */
    void append(const EventRecord &record);

    /** Records appended since open(). */
    std::uint64_t recorded() const
    {
        return _recorded.load(std::memory_order_relaxed);
    }

  private:
    EventLog() = default;

    std::atomic<bool> _active{false};
    std::atomic<std::uint64_t> _recorded{0};
    std::mutex _mutex;
    std::ofstream _out;
};

} // namespace telemetry
} // namespace hq

#endif // HQ_TELEMETRY_EVENT_LOG_H
