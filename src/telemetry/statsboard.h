/**
 * @file
 * Live statsboard: the metrics registry exported into a versioned
 * POSIX shared-memory segment so an operator can watch a *running*
 * verifier (tools/hq_stat) instead of waiting for the exit dump.
 *
 * A low-rate publisher thread snapshots the registry into the segment
 * under a seqlock: the writer bumps a sequence counter to an odd value,
 * copies the snapshot, and bumps it even; readers copy, then retry if
 * the counter changed or was odd. Monitored hot paths are never
 * involved — publishing reads the same mutex-guarded metric accessors
 * the JSON exporter uses, a few times per second, and nothing at all
 * happens when no publisher is started.
 *
 * Segment name: /hq_stats.<pid> under /dev/shm (shm_open), so
 * `hq_stat` can discover running instances by scanning the directory.
 */

#ifndef HQ_TELEMETRY_STATSBOARD_H
#define HQ_TELEMETRY_STATSBOARD_H

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <thread>

namespace hq {
namespace telemetry {

constexpr std::uint32_t kStatsBoardMagic = 0x42535148; // "HQSB" LE
// v2: capacities raised for the per-shard health/heartbeat/queue-depth
// gauges (16 shards x 4 gauges on top of the base set). Readers check
// the version, so a stale hq_stat never misreads a v2 layout.
constexpr std::uint32_t kStatsBoardVersion = 2;
constexpr std::size_t kStatsBoardNameLen = 48;
constexpr std::size_t kStatsBoardMaxCounters = 128;
constexpr std::size_t kStatsBoardMaxGauges = 96;
constexpr std::size_t kStatsBoardMaxHistograms = 48;

struct BoardCounter
{
    char name[kStatsBoardNameLen];
    std::uint64_t value;
};

struct BoardGauge
{
    char name[kStatsBoardNameLen];
    std::uint64_t value;
    std::uint64_t max;
};

struct BoardHistogram
{
    char name[kStatsBoardNameLen];
    std::uint64_t count;
    double mean;
    double min;
    double max;
    double p50;
    double p90;
    double p99;
};

/** One coherent registry snapshot (the seqlock-protected payload). */
struct StatsBoardSnapshot
{
    std::uint64_t publish_ns = 0;  //!< telemetry::nowNs() at publish
    std::uint64_t wall_ms = 0;     //!< system_clock ms at publish
    std::uint32_t n_counters = 0;
    std::uint32_t n_gauges = 0;
    std::uint32_t n_histograms = 0;
    std::uint32_t pad = 0;
    BoardCounter counters[kStatsBoardMaxCounters];
    BoardGauge gauges[kStatsBoardMaxGauges];
    BoardHistogram histograms[kStatsBoardMaxHistograms];
};

/** Fixed layout of the shared segment. */
struct StatsBoardRegion
{
    std::uint32_t magic;
    std::uint32_t version;
    std::int32_t pid;      //!< publishing process
    std::uint32_t pad;
    std::atomic<std::uint64_t> seq; //!< seqlock counter (odd = writing)
    StatsBoardSnapshot snapshot;
};

/** Build a snapshot of the process-global Registry (alphabetical,
 *  truncated to the board capacities). */
void snapshotRegistry(StatsBoardSnapshot &out);

/** Creator/owner of the shared segment; unlinks it on destruction. */
class StatsBoardWriter
{
  public:
    /** "/hq_stats.<pid>" for the calling process. */
    static std::string defaultName();

    explicit StatsBoardWriter(const std::string &name = defaultName());
    ~StatsBoardWriter();

    StatsBoardWriter(const StatsBoardWriter &) = delete;
    StatsBoardWriter &operator=(const StatsBoardWriter &) = delete;

    bool valid() const { return _region != nullptr; }
    const std::string &name() const { return _name; }

    /** Seqlock-publish one snapshot into the segment. */
    void publish(const StatsBoardSnapshot &snapshot);

    /** snapshotRegistry() + publish(). */
    void publishRegistry();

  private:
    std::string _name;
    StatsBoardRegion *_region = nullptr;
};

/** Read-only attachment to a (possibly foreign) statsboard segment. */
class StatsBoardReader
{
  public:
    explicit StatsBoardReader(const std::string &name);
    ~StatsBoardReader();

    StatsBoardReader(const StatsBoardReader &) = delete;
    StatsBoardReader &operator=(const StatsBoardReader &) = delete;

    bool valid() const { return _region != nullptr; }
    std::int32_t pid() const { return _region ? _region->pid : 0; }

    /**
     * Copy one consistent snapshot out (seqlock retry loop).
     * @return false when the segment is invalid or a consistent read
     *         could not be obtained within the retry budget.
     */
    bool read(StatsBoardSnapshot &out) const;

  private:
    const StatsBoardRegion *_region = nullptr;
};

/** Background thread that republishes the registry at a fixed rate. */
class StatsPublisher
{
  public:
    explicit StatsPublisher(
        const std::string &name = StatsBoardWriter::defaultName(),
        std::chrono::milliseconds interval = std::chrono::milliseconds(250));
    ~StatsPublisher();

    bool valid() const { return _writer.valid(); }
    const std::string &name() const { return _writer.name(); }

    void start();
    void stop();

  private:
    StatsBoardWriter _writer;
    std::chrono::milliseconds _interval;
    std::thread _thread;
    std::atomic<bool> _running{false};
};

} // namespace telemetry
} // namespace hq

#endif // HQ_TELEMETRY_STATSBOARD_H
