#include "telemetry/trace.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace hq {
namespace telemetry {

namespace {

std::size_t
roundUpPow2(std::size_t value)
{
    std::size_t pow2 = 1;
    while (pow2 < value)
        pow2 <<= 1;
    return pow2;
}

} // namespace

TraceBuffer::TraceBuffer(std::uint32_t tid, std::size_t capacity)
    : _tid(tid), _mask(roundUpPow2(capacity ? capacity : 1) - 1),
      _events(_mask + 1)
{
}

std::vector<TraceEvent>
TraceBuffer::snapshot() const
{
    const std::uint64_t cursor = _cursor.load(std::memory_order_acquire);
    const std::uint64_t retained =
        std::min<std::uint64_t>(cursor, _mask + 1);
    std::vector<TraceEvent> events;
    events.reserve(retained);
    for (std::uint64_t i = cursor - retained; i < cursor; ++i)
        events.push_back(_events[i & _mask]);
    return events;
}

TraceRecorder &
TraceRecorder::instance()
{
    static TraceRecorder recorder;
    return recorder;
}

TraceBuffer &
TraceRecorder::threadBuffer()
{
    thread_local std::shared_ptr<TraceBuffer> buffer;
    if (!buffer) {
        std::lock_guard<std::mutex> guard(_mutex);
        buffer = std::make_shared<TraceBuffer>(_next_tid++, _capacity);
        _buffers.push_back(buffer);
    }
    return *buffer;
}

void
TraceRecorder::setCapacity(std::size_t events)
{
    std::lock_guard<std::mutex> guard(_mutex);
    _capacity = events ? events : 1;
}

std::string
TraceRecorder::toJson() const
{
    std::vector<std::shared_ptr<TraceBuffer>> buffers;
    {
        std::lock_guard<std::mutex> guard(_mutex);
        buffers = _buffers;
    }

    // Merge all per-thread windows, oldest first, so viewers that care
    // about ordering (and humans reading the file) see one timeline.
    struct Tagged
    {
        TraceEvent event;
        std::uint32_t tid;
    };
    std::vector<Tagged> merged;
    for (const auto &buffer : buffers) {
        for (const TraceEvent &event : buffer->snapshot()) {
            if (event.name)
                merged.push_back({event, buffer->tid()});
        }
    }
    std::stable_sort(merged.begin(), merged.end(),
                     [](const Tagged &a, const Tagged &b) {
                         return a.event.ts_ns < b.event.ts_ns;
                     });

    std::ostringstream os;
    os << "[";
    bool first = true;
    char buf[64];
    for (const Tagged &tagged : merged) {
        const TraceEvent &event = tagged.event;
        if (!first)
            os << ",";
        first = false;
        os << "{\"name\":\"" << event.name << "\",\"cat\":\"hq\",\"ph\":\""
           << event.phase << "\",\"pid\":1,\"tid\":" << tagged.tid;
        std::snprintf(buf, sizeof(buf), ",\"ts\":%.3f",
                      static_cast<double>(event.ts_ns) / 1000.0);
        os << buf;
        if (event.phase == 'X') {
            std::snprintf(buf, sizeof(buf), ",\"dur\":%.3f",
                          static_cast<double>(event.dur_ns) / 1000.0);
            os << buf;
        } else if (event.phase == 'i') {
            os << ",\"s\":\"t\"";
        } else if (event.phase == 'C') {
            os << ",\"args\":{\"value\":" << event.value << "}";
        } else if (event.phase == 's' || event.phase == 'f') {
            // Flow events pair by (cat, name, id); "bp":"e" binds the
            // finish to the enclosing slice, which Perfetto requires to
            // draw the arrow into the verifier's check slice.
            std::snprintf(buf, sizeof(buf), ",\"id\":\"0x%llx\"",
                          static_cast<unsigned long long>(event.value));
            os << buf;
            if (event.phase == 'f')
                os << ",\"bp\":\"e\"";
        }
        os << "}";
    }
    os << "]";
    return os.str();
}

std::uint64_t
TraceRecorder::totalRecorded() const
{
    std::lock_guard<std::mutex> guard(_mutex);
    std::uint64_t total = 0;
    for (const auto &buffer : _buffers)
        total += buffer->recorded();
    return total;
}

void
TraceRecorder::reset()
{
    std::lock_guard<std::mutex> guard(_mutex);
    for (const auto &buffer : _buffers)
        buffer->reset();
}

} // namespace telemetry
} // namespace hq
