#include "telemetry/statsboard.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "common/log.h"
#include "telemetry/telemetry.h"

namespace hq {
namespace telemetry {

namespace {

HQ_TELEMETRY_HANDLE(publishesCounter, Counter, "statsboard.publishes")

void
copyName(char (&dst)[kStatsBoardNameLen], const std::string &src)
{
    std::strncpy(dst, src.c_str(), kStatsBoardNameLen - 1);
    dst[kStatsBoardNameLen - 1] = '\0';
}

static_assert(sizeof(StatsBoardSnapshot) % sizeof(std::uint64_t) == 0,
              "seqlock copy moves whole 64-bit words");
static_assert(alignof(StatsBoardSnapshot) >= alignof(std::uint64_t),
              "seqlock copy requires word alignment");

/**
 * Word-wise copy through relaxed atomic accesses. The seqlock's write
 * and read sides deliberately race on the snapshot payload (that is the
 * whole point of a seqlock — torn copies are detected via the sequence
 * counter and retried), but a plain memcpy makes that race undefined
 * behavior and a TSan report. Copying 64-bit words with relaxed atomics
 * keeps the race benign and defined; the release/acquire fences around
 * the copy still order the words against the counter.
 */
void
seqlockCopy(void *dst, const void *src, std::size_t bytes)
{
    auto *d = static_cast<std::uint64_t *>(dst);
    const auto *s = static_cast<const std::uint64_t *>(src);
    const std::size_t words = bytes / sizeof(std::uint64_t);
    for (std::size_t i = 0; i < words; ++i)
        __atomic_store_n(&d[i], __atomic_load_n(&s[i], __ATOMIC_RELAXED),
                         __ATOMIC_RELAXED);
}

} // namespace

void
snapshotRegistry(StatsBoardSnapshot &out)
{
    out.publish_ns = nowNs();
    out.wall_ms = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::system_clock::now().time_since_epoch())
            .count());
    out.n_counters = 0;
    out.n_gauges = 0;
    out.n_histograms = 0;

    Registry &registry = Registry::instance();
    registry.forEachCounter([&out](const std::string &name,
                                   const Counter &counter) {
        if (out.n_counters >= kStatsBoardMaxCounters)
            return;
        BoardCounter &slot = out.counters[out.n_counters++];
        copyName(slot.name, name);
        slot.value = counter.value();
    });
    registry.forEachGauge([&out](const std::string &name,
                                 const Gauge &gauge) {
        if (out.n_gauges >= kStatsBoardMaxGauges)
            return;
        BoardGauge &slot = out.gauges[out.n_gauges++];
        copyName(slot.name, name);
        slot.value = gauge.value();
        slot.max = gauge.max();
    });
    registry.forEachHistogram([&out](const std::string &name,
                                     const Histogram &histogram) {
        if (out.n_histograms >= kStatsBoardMaxHistograms)
            return;
        BoardHistogram &slot = out.histograms[out.n_histograms++];
        copyName(slot.name, name);
        slot.count = histogram.count();
        slot.mean = histogram.mean();
        slot.min = histogram.min();
        slot.max = histogram.max();
        slot.p50 = histogram.percentile(50);
        slot.p90 = histogram.percentile(90);
        slot.p99 = histogram.percentile(99);
    });
}

// --- Writer ----------------------------------------------------------

std::string
StatsBoardWriter::defaultName()
{
    return "/hq_stats." + std::to_string(::getpid());
}

StatsBoardWriter::StatsBoardWriter(const std::string &name) : _name(name)
{
    const int fd = ::shm_open(_name.c_str(), O_CREAT | O_RDWR, 0644);
    if (fd < 0) {
        logWarn("statsboard: shm_open(", _name, ") failed: ",
                std::strerror(errno));
        return;
    }
    if (::ftruncate(fd, sizeof(StatsBoardRegion)) != 0) {
        logWarn("statsboard: ftruncate failed: ", std::strerror(errno));
        ::close(fd);
        ::shm_unlink(_name.c_str());
        return;
    }
    void *mapping = ::mmap(nullptr, sizeof(StatsBoardRegion),
                           PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0);
    ::close(fd);
    if (mapping == MAP_FAILED) {
        logWarn("statsboard: mmap failed: ", std::strerror(errno));
        ::shm_unlink(_name.c_str());
        return;
    }
    _region = new (mapping) StatsBoardRegion;
    _region->magic = kStatsBoardMagic;
    _region->version = kStatsBoardVersion;
    _region->pid = static_cast<std::int32_t>(::getpid());
    _region->seq.store(0, std::memory_order_relaxed);
}

StatsBoardWriter::~StatsBoardWriter()
{
    if (_region) {
        ::munmap(_region, sizeof(StatsBoardRegion));
        ::shm_unlink(_name.c_str());
    }
}

void
StatsBoardWriter::publish(const StatsBoardSnapshot &snapshot)
{
    if (!_region)
        return;
    const std::uint64_t seq = _region->seq.load(std::memory_order_relaxed);
    // Seqlock write side: odd counter marks the snapshot as in flux.
    _region->seq.store(seq + 1, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_release);
    seqlockCopy(&_region->snapshot, &snapshot, sizeof(snapshot));
    std::atomic_thread_fence(std::memory_order_release);
    _region->seq.store(seq + 2, std::memory_order_release);
    if (enabled())
        publishesCounter().inc();
}

void
StatsBoardWriter::publishRegistry()
{
    // The snapshot is ~20 KB of POD; building it takes the registry
    // mutex briefly (same as the JSON exporter) but never blocks
    // recording hot paths, which only touch atomics.
    static thread_local StatsBoardSnapshot snapshot;
    snapshotRegistry(snapshot);
    publish(snapshot);
}

// --- Reader ----------------------------------------------------------

StatsBoardReader::StatsBoardReader(const std::string &name)
{
    const int fd = ::shm_open(name.c_str(), O_RDONLY, 0);
    if (fd < 0)
        return;
    void *mapping = ::mmap(nullptr, sizeof(StatsBoardRegion), PROT_READ,
                           MAP_SHARED, fd, 0);
    ::close(fd);
    if (mapping == MAP_FAILED)
        return;
    const auto *region = static_cast<const StatsBoardRegion *>(mapping);
    if (region->magic != kStatsBoardMagic ||
        region->version != kStatsBoardVersion) {
        ::munmap(mapping, sizeof(StatsBoardRegion));
        return;
    }
    _region = region;
}

StatsBoardReader::~StatsBoardReader()
{
    if (_region) {
        ::munmap(const_cast<StatsBoardRegion *>(_region),
                 sizeof(StatsBoardRegion));
    }
}

bool
StatsBoardReader::read(StatsBoardSnapshot &out) const
{
    if (!_region)
        return false;
    for (int attempt = 0; attempt < 1000; ++attempt) {
        const std::uint64_t before =
            _region->seq.load(std::memory_order_acquire);
        if (before & 1) {
            // Writer mid-publish: spin.
            continue;
        }
        seqlockCopy(&out, &_region->snapshot, sizeof(out));
        std::atomic_thread_fence(std::memory_order_acquire);
        const std::uint64_t after =
            _region->seq.load(std::memory_order_acquire);
        if (before == after)
            return true;
    }
    return false;
}

// --- Publisher -------------------------------------------------------

StatsPublisher::StatsPublisher(const std::string &name,
                               std::chrono::milliseconds interval)
    : _writer(name), _interval(interval)
{
}

StatsPublisher::~StatsPublisher()
{
    stop();
}

void
StatsPublisher::start()
{
    if (!_writer.valid())
        return;
    bool expected = false;
    if (!_running.compare_exchange_strong(expected, true))
        return;
    _thread = std::thread([this] {
        while (_running.load(std::memory_order_relaxed)) {
            _writer.publishRegistry();
            // Sleep in small slices so stop() is prompt even with a
            // long publishing interval.
            auto remaining = _interval;
            while (remaining.count() > 0 &&
                   _running.load(std::memory_order_relaxed)) {
                const auto slice =
                    std::min(remaining, std::chrono::milliseconds(50));
                std::this_thread::sleep_for(slice);
                remaining -= slice;
            }
        }
        // Final snapshot so hq_stat sees the end-of-run totals.
        _writer.publishRegistry();
    });
}

void
StatsPublisher::stop()
{
    if (!_running.exchange(false))
        return;
    if (_thread.joinable())
        _thread.join();
}

} // namespace telemetry
} // namespace hq
