/**
 * @file
 * Process-global metrics registry: counters, gauges, and log2-bucketed
 * latency histograms, registered by name and exportable as JSON.
 *
 * This is the measurement layer behind the paper's evaluation (§5.4,
 * Figures 3-5): per-message verification latency, syscall-pause wait
 * time, AppendWrite queue occupancy, and message throughput. Metrics are
 * recorded only while telemetry is enabled; every hot-path hook checks
 * enabled() once per scope (RAII ScopedTimer / TraceScope), so disabled
 * runs pay a single relaxed atomic load + branch and bench numbers are
 * not perturbed.
 *
 * Naming scheme: `<component>.<metric>[_<unit>]`, e.g.
 * `verifier.msg_latency_ns`, `kernel.syscall_pause_ns`,
 * `ipc.ring_occupancy`. See docs/observability.md.
 */

#ifndef HQ_TELEMETRY_TELEMETRY_H
#define HQ_TELEMETRY_TELEMETRY_H

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "common/stats.h"

namespace hq {
namespace telemetry {

// --- Global enable switch --------------------------------------------

namespace detail {
extern std::atomic<bool> g_enabled;
} // namespace detail

/** True when telemetry recording is on (relaxed load: hot-path safe). */
inline bool
enabled()
{
    return detail::g_enabled.load(std::memory_order_relaxed);
}

/** Turn recording on/off (benches: --telemetry-out; tests). */
void setEnabled(bool on);

/** Monotonic nanoseconds since the process's telemetry epoch. */
std::uint64_t nowNs();

/**
 * Raw monotonic nanoseconds (no per-process epoch). Comparable across
 * processes on the same machine, which is what the cross-process lag
 * sidecar needs: the producer stamps in one process and the verifier
 * subtracts in another.
 */
std::uint64_t monotonicRawNs();

// --- Metric types ----------------------------------------------------

/** Monotonic event counter; increments are lock-free and thread-safe. */
class Counter
{
  public:
    void
    add(std::uint64_t delta)
    {
        _value.fetch_add(delta, std::memory_order_relaxed);
    }

    void inc() { add(1); }

    std::uint64_t
    value() const
    {
        return _value.load(std::memory_order_relaxed);
    }

    void reset() { _value.store(0, std::memory_order_relaxed); }

  private:
    std::atomic<std::uint64_t> _value{0};
};

/**
 * Instantaneous level (queue occupancy, entry count). Remembers the
 * high-water mark alongside the last set value.
 */
class Gauge
{
  public:
    void
    set(std::uint64_t value)
    {
        _value.store(value, std::memory_order_relaxed);
        std::uint64_t seen = _max.load(std::memory_order_relaxed);
        while (value > seen &&
               !_max.compare_exchange_weak(seen, value,
                                           std::memory_order_relaxed)) {
        }
    }

    std::uint64_t
    value() const
    {
        return _value.load(std::memory_order_relaxed);
    }

    std::uint64_t
    max() const
    {
        return _max.load(std::memory_order_relaxed);
    }

    void
    reset()
    {
        _value.store(0, std::memory_order_relaxed);
        _max.store(0, std::memory_order_relaxed);
    }

  private:
    std::atomic<std::uint64_t> _value{0};
    std::atomic<std::uint64_t> _max{0};
};

/**
 * Latency histogram with log2 buckets: bucket i counts samples in
 * [2^(i-1), 2^i) (bucket 0 counts zeros; the last bucket is the
 * overflow bucket). Percentiles interpolate within the winning bucket
 * and are clamped to the observed [min, max]; mean/stddev come from the
 * exact Welford accumulator (hq::RunningStat), not the buckets.
 */
class Histogram
{
  public:
    static constexpr int kBuckets = 64;

    /** Fold one sample (typically nanoseconds) into the histogram. */
    void record(std::uint64_t value);

    /**
     * Fold `repeat` copies of one sample with a single lock acquisition.
     * The batched verifier records one amortized per-message latency per
     * drained batch this way; count still advances by `repeat`, so
     * message-count semantics are unchanged.
     */
    void record(std::uint64_t value, std::uint64_t repeat);

    std::uint64_t count() const;

    /**
     * Value at percentile p in [0, 100]: rank-interpolated within the
     * bucket that holds the p-th sample. Buckets are log2 ranges, so
     * interpolation is geometric (lo * 2^frac) — the unbiased choice
     * for an exponential bucket; linear interpolation lands on the
     * arithmetic midpoint and systematically under-reports high
     * percentiles. Clamped to the observed extrema. 0 when empty.
     */
    double percentile(double p) const;

    double mean() const;
    double stddev() const;
    double min() const;
    double max() const;

    /** Snapshot of the raw bucket counts (index = floor(log2)+1). */
    std::array<std::uint64_t, kBuckets> buckets() const;

    void reset();

  private:
    mutable std::mutex _mutex;
    std::array<std::uint64_t, kBuckets> _buckets{};
    RunningStat _stat;
};

// --- Registry --------------------------------------------------------

/**
 * Process-global name -> metric registry. Metric references returned by
 * counter()/gauge()/histogram() are stable for the process lifetime, so
 * hot paths should look a metric up once (function-local static) and
 * reuse the reference.
 */
class Registry
{
  public:
    static Registry &instance();

    /** Find-or-create by name. */
    Counter &counter(const std::string &name);
    Gauge &gauge(const std::string &name);
    Histogram &histogram(const std::string &name);

    /**
     * All metrics as one JSON object:
     * {"counters":{...},"gauges":{...},"histograms":{...}} with
     * count/mean/stddev/min/max/p50/p90/p99 per histogram.
     */
    std::string toJson() const;

    /**
     * All metrics in the Prometheus text exposition format (version
     * 0.0.4): counters as `<name>_total`, gauges as `<name>` plus a
     * `<name>_max` high-water series, histograms as summaries
     * (quantile 0.5/0.9/0.99 + `_sum`/`_count`). Names are derived via
     * prometheusSeries(), so per-shard and per-pid metrics become
     * labeled series of one family. Ends with a newline; parseable by
     * the node-exporter textfile collector.
     */
    std::string toPrometheus() const;

    /**
     * Visit every metric of one kind in name order. The registry mutex
     * is held across the sweep (registration is rare and hot paths
     * cache references, so this blocks no recorder) — used by the
     * statsboard publisher to build coherent snapshots.
     */
    void forEachCounter(
        const std::function<void(const std::string &, const Counter &)>
            &visit) const;
    void forEachGauge(
        const std::function<void(const std::string &, const Gauge &)>
            &visit) const;
    void forEachHistogram(
        const std::function<void(const std::string &, const Histogram &)>
            &visit) const;

    /** Zero every metric's value (registrations are kept). Tests. */
    void reset();

  private:
    Registry();

    mutable std::mutex _mutex;
    std::map<std::string, std::unique_ptr<Counter>> _counters;
    std::map<std::string, std::unique_ptr<Gauge>> _gauges;
    std::map<std::string, std::unique_ptr<Histogram>> _histograms;
};

namespace detail {

/** Registry accessor dispatched on metric type (HQ_TELEMETRY_HANDLE). */
template <typename Metric> Metric &getMetric(const std::string &name);

template <>
inline Counter &
getMetric<Counter>(const std::string &name)
{
    return Registry::instance().counter(name);
}

template <>
inline Gauge &
getMetric<Gauge>(const std::string &name)
{
    return Registry::instance().gauge(name);
}

template <>
inline Histogram &
getMetric<Histogram>(const std::string &name)
{
    return Registry::instance().histogram(name);
}

} // namespace detail

/**
 * Defines a function `fn()` returning a cached reference to the named
 * metric (`Kind` is Counter, Gauge, or Histogram). The registry lookup
 * runs once, on first use; hot paths pay only a static-local check.
 * Use at namespace scope in a .cc file:
 *
 *   HQ_TELEMETRY_HANDLE(messagesCounter, Counter, "verifier.messages")
 */
#define HQ_TELEMETRY_HANDLE(fn, Kind, metric_name)                        \
    static ::hq::telemetry::Kind &fn()                                    \
    {                                                                     \
        static ::hq::telemetry::Kind &handle =                            \
            ::hq::telemetry::detail::getMetric<::hq::telemetry::Kind>(    \
                metric_name);                                             \
        return handle;                                                    \
    }

// --- RAII instrumentation helper -------------------------------------

/**
 * Times its scope into a histogram. When telemetry is disabled at
 * construction the timer is inert: no clock read, no recording.
 */
class ScopedTimer
{
  public:
    explicit ScopedTimer(Histogram &histogram)
        : _histogram(enabled() ? &histogram : nullptr),
          _start(_histogram ? nowNs() : 0)
    {
    }

    ScopedTimer(const ScopedTimer &) = delete;
    ScopedTimer &operator=(const ScopedTimer &) = delete;

    ~ScopedTimer()
    {
        if (_histogram)
            _histogram->record(nowNs() - _start);
    }

    /** Record now instead of at scope exit (and only once). */
    void
    stop()
    {
        if (_histogram)
            _histogram->record(nowNs() - _start);
        _histogram = nullptr;
    }

  private:
    Histogram *_histogram;
    std::uint64_t _start;
};

// --- Prometheus naming -----------------------------------------------

/**
 * A registry metric name mapped onto the Prometheus data model: a
 * `hq_`-prefixed, sanitized family name plus a label set. Structured
 * components become labels instead of name fragments, so the fleet
 * aggregator can sum/filter across them:
 *
 *   verifier.shard3.messages  -> hq_verifier_messages, shard="3"
 *   verifier.lag_ns.pid_42    -> hq_verifier_lag_ns,   pid="42"
 *   ipc.ring_occupancy        -> hq_ipc_ring_occupancy (no labels)
 *
 * Any other character outside [a-zA-Z0-9_] is replaced with '_'.
 */
struct PromSeries
{
    std::string name;   //!< metric family name
    std::string labels; //!< comma-joined `key="value"` pairs ("" = none)
};

PromSeries prometheusSeries(const std::string &metric);

// --- Export ----------------------------------------------------------

/**
 * Write the combined telemetry dump — {"metrics": <Registry::toJson()>,
 * "traceEvents": [...]} — to path. The traceEvents array is the Chrome
 * trace_event format; load the file in chrome://tracing or Perfetto.
 * @return true when the file was written.
 */
bool writeJsonFile(const std::string &path);

/**
 * Shared CLI helper for benches and examples. Strips the observability
 * flags from argv (positional args shift down) and activates the
 * corresponding subsystems:
 *
 *  - `--telemetry-out=FILE` / bare `--telemetry`: enable recording;
 *    with FILE, an atexit hook writes the combined JSON dump there.
 *  - `--event-log=FILE`: open the structured JSONL audit stream
 *    (violations, sequence gaps, epoch timeouts, ring drops) and
 *    enable recording.
 *  - `--statsboard[=NAME]`: enable recording and start the shared-
 *    memory statsboard publisher (segment NAME, default
 *    /hq_stats.<pid>) that tools/hq_stat attaches to.
 *  - `--flight-recorder[=FILE]`: enable the flight recorder, append
 *    triggered dumps (and one final dump at exit) to FILE (default
 *    flight.<pid>.jsonl) and install the fatal-signal dump handler.
 *
 * Call first thing in main().
 */
void handleBenchArgs(int &argc, char **argv);

} // namespace telemetry
} // namespace hq

#endif // HQ_TELEMETRY_TELEMETRY_H
