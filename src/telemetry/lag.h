/**
 * @file
 * Per-channel enqueue-timestamp sidecar for verification-lag tracing.
 *
 * HerQules' central performance claim is *bounded asynchronous
 * validation* (§2.2, §3.3): a message may be checked long after the
 * program emits it, with only syscalls bounding the drift. The sidecar
 * measures that drift per message without touching the fixed 32-byte
 * wire `Message` format (§3.1): a parallel SPSC ring of
 * (sequence, enqueue-timestamp) envelopes, written by the producer on
 * send and drained by the verifier as it checks each message.
 *
 * Matching is by per-channel sequence number, not blind alignment, so
 * the sidecar degrades safely instead of lying: if telemetry was off
 * for some sends, or a producer bypassed the stamping wrapper, the
 * consumer discards envelopes whose sequence has already passed and
 * simply reports no lag sample for unmatched messages. A full sidecar
 * drops the newest stamp (counted) — lag tracing is a window, never a
 * source of back-pressure.
 *
 * The slot storage can live in caller-provided memory so the
 * cross-process channel can place it in its shared mapping; timestamps
 * therefore use the process-independent monotonic clock
 * (telemetry::monotonicRawNs), not the per-process telemetry epoch.
 */

#ifndef HQ_TELEMETRY_LAG_H
#define HQ_TELEMETRY_LAG_H

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>

namespace hq {
namespace telemetry {

/** One stamped envelope: channel-local send index + enqueue time. */
struct LagStamp
{
    std::uint64_t seq = 0;
    std::uint64_t enqueue_ns = 0;
};

/** Fixed-layout sidecar header + slots (shared-memory friendly POD). */
struct LagSidecarRegion
{
    alignas(64) std::atomic<std::uint64_t> tail;    //!< producer cursor
    alignas(64) std::atomic<std::uint64_t> head;    //!< consumer cursor
    std::uint64_t capacity;                         //!< slot count (pow2)
    std::atomic<std::uint64_t> dropped;             //!< stamps lost (full)
    LagStamp slots[]; // NOLINT: flexible array, sized at creation
};

/**
 * SPSC ring of LagStamp envelopes over owned or caller-provided
 * storage. One producer (the channel's sender) and one consumer (the
 * verifier), mirroring the discipline of the message ring it shadows.
 */
class LagSidecar
{
  public:
    /** Bytes needed for a region with `capacity` slots (pow2-rounded). */
    static std::size_t regionBytes(std::size_t capacity);

    /** Owned private-memory sidecar (thread-to-thread channels). */
    explicit LagSidecar(std::size_t capacity);

    /**
     * Wrap caller-provided storage of regionBytes(capacity) bytes
     * (e.g. inside a shared mapping). @param initialize write the
     * header; pass false to attach to an already-initialized region.
     */
    LagSidecar(void *region, std::size_t capacity, bool initialize);

    LagSidecar(const LagSidecar &) = delete;
    LagSidecar &operator=(const LagSidecar &) = delete;

    /**
     * Producer: record that message `seq` was enqueued at `enqueue_ns`.
     * @return false when the sidecar was full and the stamp was dropped.
     */
    bool stamp(std::uint64_t seq, std::uint64_t enqueue_ns);

    /**
     * Consumer: drain envelopes up to and including message index
     * `seq`, discarding stale ones (stamped sends the consumer already
     * passed — see file comment).
     * @return true and set enqueue_ns when an envelope for exactly
     *         `seq` was found.
     */
    bool consumeUpTo(std::uint64_t seq, std::uint64_t &enqueue_ns);

    /** Envelopes stamped but not yet consumed. */
    std::size_t pending() const;

    /** Stamps dropped because the sidecar was full. */
    std::uint64_t dropped() const
    {
        return _region->dropped.load(std::memory_order_relaxed);
    }

    std::size_t capacity() const
    {
        return static_cast<std::size_t>(_region->capacity);
    }

  private:
    std::unique_ptr<unsigned char[]> _owned; //!< empty when wrapping
    LagSidecarRegion *_region = nullptr;
    std::uint64_t _mask = 0;
};

} // namespace telemetry
} // namespace hq

#endif // HQ_TELEMETRY_LAG_H
