#include "telemetry/lag.h"

#include <new>

#include "common/bits.h"

namespace hq {
namespace telemetry {

std::size_t
LagSidecar::regionBytes(std::size_t capacity)
{
    const std::size_t slots = roundUpPow2(capacity ? capacity : 1);
    return sizeof(LagSidecarRegion) + slots * sizeof(LagStamp);
}

LagSidecar::LagSidecar(std::size_t capacity)
    : _owned(new unsigned char[regionBytes(capacity)])
{
    const std::size_t slots = roundUpPow2(capacity ? capacity : 1);
    _region = new (_owned.get()) LagSidecarRegion;
    _region->tail.store(0, std::memory_order_relaxed);
    _region->head.store(0, std::memory_order_relaxed);
    _region->capacity = slots;
    _region->dropped.store(0, std::memory_order_relaxed);
    _mask = slots - 1;
}

LagSidecar::LagSidecar(void *region, std::size_t capacity, bool initialize)
{
    const std::size_t slots = roundUpPow2(capacity ? capacity : 1);
    if (initialize) {
        _region = new (region) LagSidecarRegion;
        _region->tail.store(0, std::memory_order_relaxed);
        _region->head.store(0, std::memory_order_relaxed);
        _region->capacity = slots;
        _region->dropped.store(0, std::memory_order_relaxed);
    } else {
        _region = static_cast<LagSidecarRegion *>(region);
    }
    _mask = slots - 1;
}

bool
LagSidecar::stamp(std::uint64_t seq, std::uint64_t enqueue_ns)
{
    const std::uint64_t tail = _region->tail.load(std::memory_order_relaxed);
    const std::uint64_t head = _region->head.load(std::memory_order_acquire);
    if (tail - head > _mask) {
        _region->dropped.fetch_add(1, std::memory_order_relaxed);
        return false;
    }
    _region->slots[tail & _mask] = {seq, enqueue_ns};
    _region->tail.store(tail + 1, std::memory_order_release);
    return true;
}

bool
LagSidecar::consumeUpTo(std::uint64_t seq, std::uint64_t &enqueue_ns)
{
    std::uint64_t head = _region->head.load(std::memory_order_relaxed);
    const std::uint64_t tail =
        _region->tail.load(std::memory_order_acquire);
    while (head != tail) {
        const LagStamp stamp = _region->slots[head & _mask];
        if (stamp.seq > seq) {
            // Envelope for a message the consumer has not reached yet:
            // leave it queued.
            _region->head.store(head, std::memory_order_release);
            return false;
        }
        ++head;
        if (stamp.seq == seq) {
            _region->head.store(head, std::memory_order_release);
            enqueue_ns = stamp.enqueue_ns;
            return true;
        }
        // stamp.seq < seq: stale envelope (the matching message was
        // consumed without lag accounting, e.g. telemetry was off or a
        // direct tryRecv bypassed the verifier) — discard and continue.
    }
    _region->head.store(head, std::memory_order_release);
    return false;
}

std::size_t
LagSidecar::pending() const
{
    return static_cast<std::size_t>(
        _region->tail.load(std::memory_order_acquire) -
        _region->head.load(std::memory_order_acquire));
}

} // namespace telemetry
} // namespace hq
