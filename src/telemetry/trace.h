/**
 * @file
 * Lock-free per-thread trace recorder producing Chrome trace_event JSON
 * (load in chrome://tracing or https://ui.perfetto.dev).
 *
 * Each thread owns a fixed-capacity ring of timestamped events and is
 * its only writer, mirroring the SPSC discipline of src/ipc/spsc_ring.h
 * (one AMR per writer core, single reader): recording is a slot write
 * plus a release store of the cursor, with no locks and no allocation.
 * When the ring wraps, the oldest events are overwritten — a trace is a
 * window onto the tail of the run, never a source of back-pressure.
 *
 * Event names must be string literals (or otherwise outlive the
 * recorder): the ring stores the pointer, not a copy.
 */

#ifndef HQ_TELEMETRY_TRACE_H
#define HQ_TELEMETRY_TRACE_H

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "telemetry/telemetry.h"

namespace hq {
namespace telemetry {

/** One recorded event (Chrome trace_event phases X / i / C / s / f). */
struct TraceEvent
{
    const char *name = nullptr;
    char phase = 'X';         //!< 'X' complete, 'i' instant, 'C' counter,
                              //!< 's'/'f' flow begin/end
    std::uint64_t ts_ns = 0;  //!< start timestamp (nowNs())
    std::uint64_t dur_ns = 0; //!< duration ('X' only)
    std::uint64_t value = 0;  //!< counter value ('C'), flow id ('s'/'f')
};

/** Fixed-capacity single-writer event ring; capacity is a power of 2. */
class TraceBuffer
{
  public:
    TraceBuffer(std::uint32_t tid, std::size_t capacity);

    /** Append one event; wraps over the oldest when full. Owner only. */
    void
    emit(const TraceEvent &event)
    {
        const std::uint64_t cursor =
            _cursor.load(std::memory_order_relaxed);
        _events[cursor & _mask] = event;
        _cursor.store(cursor + 1, std::memory_order_release);
    }

    std::uint32_t tid() const { return _tid; }

    /** Events recorded since construction (not capped by capacity). */
    std::uint64_t recorded() const
    {
        return _cursor.load(std::memory_order_acquire);
    }

    /** Oldest-first snapshot of the retained window. */
    std::vector<TraceEvent> snapshot() const;

    void reset() { _cursor.store(0, std::memory_order_release); }

  private:
    std::uint32_t _tid;
    std::uint64_t _mask;
    std::vector<TraceEvent> _events;
    alignas(64) std::atomic<std::uint64_t> _cursor{0};
};

/**
 * Owner of all per-thread trace buffers. threadBuffer() hands each
 * calling thread its own ring (created on first use and kept alive for
 * the process, so late dumps never race thread exit).
 */
class TraceRecorder
{
  public:
    static TraceRecorder &instance();

    /** The calling thread's ring (thread_local lookup). */
    TraceBuffer &threadBuffer();

    /** Per-thread ring capacity for rings created after this call. */
    void setCapacity(std::size_t events);

    /**
     * All retained events from all threads as a Chrome trace_event JSON
     * array, oldest first. Timestamps are microseconds ("ts"/"dur"
     * fields) as the format requires.
     */
    std::string toJson() const;

    /** Total events recorded (including overwritten ones). */
    std::uint64_t totalRecorded() const;

    /** Drop retained events in every ring. Tests. */
    void reset();

  private:
    TraceRecorder() = default;

    mutable std::mutex _mutex;
    std::vector<std::shared_ptr<TraceBuffer>> _buffers;
    std::size_t _capacity = 1 << 14;
    std::uint32_t _next_tid = 1;
};

/**
 * RAII complete-event ('X') scope. Inert when telemetry is disabled at
 * construction: no clock read, no buffer lookup.
 */
class TraceScope
{
  public:
    /** @param name string literal naming the scope. */
    explicit TraceScope(const char *name)
        : _name(enabled() ? name : nullptr),
          _start(_name ? nowNs() : 0)
    {
    }

    TraceScope(const TraceScope &) = delete;
    TraceScope &operator=(const TraceScope &) = delete;

    ~TraceScope()
    {
        if (!_name)
            return;
        TraceEvent event;
        event.name = _name;
        event.phase = 'X';
        event.ts_ns = _start;
        event.dur_ns = nowNs() - _start;
        TraceRecorder::instance().threadBuffer().emit(event);
    }

  private:
    const char *_name;
    std::uint64_t _start;
};

/** Record an instant event (vertical tick in the trace viewer). */
inline void
traceInstant(const char *name)
{
    if (!enabled())
        return;
    TraceEvent event;
    event.name = name;
    event.phase = 'i';
    event.ts_ns = nowNs();
    TraceRecorder::instance().threadBuffer().emit(event);
}

/** Record a counter sample (stacked area track in the trace viewer). */
inline void
traceCounter(const char *name, std::uint64_t value)
{
    if (!enabled())
        return;
    TraceEvent event;
    event.name = name;
    event.phase = 'C';
    event.ts_ns = nowNs();
    event.value = value;
    TraceRecorder::instance().threadBuffer().emit(event);
}

/**
 * Begin a flow (Perfetto draws an arrow from here to the matching
 * traceFlowEnd with the same id, across threads). Emit inside an 'X'
 * slice on the producing thread — flow events bind to the slice
 * enclosing their timestamp. The verifier keys lag flows by
 * (channel id << 32) | sequence.
 */
inline void
traceFlowBegin(const char *name, std::uint64_t id)
{
    if (!enabled())
        return;
    TraceEvent event;
    event.name = name;
    event.phase = 's';
    event.ts_ns = nowNs();
    event.value = id;
    TraceRecorder::instance().threadBuffer().emit(event);
}

/** End a flow begun by traceFlowBegin(name, id) on another thread. */
inline void
traceFlowEnd(const char *name, std::uint64_t id)
{
    if (!enabled())
        return;
    TraceEvent event;
    event.name = name;
    event.phase = 'f';
    event.ts_ns = nowNs();
    event.value = id;
    TraceRecorder::instance().threadBuffer().emit(event);
}

} // namespace telemetry
} // namespace hq

#endif // HQ_TELEMETRY_TRACE_H
