#include "telemetry/health.h"

#include <algorithm>
#include <string>

#include "common/log.h"
#include "telemetry/event_log.h"
#include "telemetry/flight_recorder.h"
#include "telemetry/telemetry.h"

namespace hq {
namespace telemetry {

const char *
healthStateName(HealthState state)
{
    switch (state) {
      case HealthState::Ok:
        return "ok";
      case HealthState::Degraded:
        return "degraded";
      case HealthState::Stalled:
        return "stalled";
    }
    return "unknown";
}

HealthMonitor::HealthMonitor(std::size_t num_shards, HealthConfig config,
                             Sampler sampler)
    : _config(config), _sampler(std::move(sampler))
{
    _config.degraded_after = std::max(1, _config.degraded_after);
    _config.stalled_after =
        std::max(_config.degraded_after, _config.stalled_after);
    Registry &registry = Registry::instance();
    _transitions_metric =
        &registry.counter("verifier.health_transitions");
    _shards.reserve(num_shards);
    for (std::size_t i = 0; i < num_shards; ++i) {
        auto shard = std::make_unique<ShardHealth>();
        const std::string prefix =
            "verifier.shard" + std::to_string(i) + ".";
        shard->health = &registry.gauge(prefix + "health");
        shard->heartbeat = &registry.gauge(prefix + "heartbeat");
        shard->queue_depth = &registry.gauge(prefix + "queue_depth");
        shard->ack_age = &registry.gauge(prefix + "ack_age_ns");
        _shards.push_back(std::move(shard));
    }
}

HealthMonitor::~HealthMonitor()
{
    stop();
}

void
HealthMonitor::start()
{
    bool expected = false;
    if (!_running.compare_exchange_strong(expected, true))
        return;
    _thread = std::thread([this] {
        while (_running.load(std::memory_order_relaxed)) {
            sampleOnce();
            // Sleep in small slices so stop() is prompt even with a
            // long sampling interval (same pattern as StatsPublisher).
            auto remaining = _config.interval;
            while (remaining.count() > 0 &&
                   _running.load(std::memory_order_relaxed)) {
                const auto slice =
                    std::min(remaining, std::chrono::milliseconds(25));
                std::this_thread::sleep_for(slice);
                remaining -= slice;
            }
        }
    });
}

void
HealthMonitor::stop()
{
    if (!_running.exchange(false)) {
        if (_thread.joinable())
            _thread.join();
        return;
    }
    if (_thread.joinable())
        _thread.join();
}

void
HealthMonitor::sampleOnce()
{
    std::lock_guard<std::mutex> guard(_sample_mutex);
    for (std::size_t i = 0; i < _shards.size(); ++i)
        sampleShard(i);
}

HealthState
HealthMonitor::state(std::size_t shard) const
{
    if (shard >= _shards.size())
        return HealthState::Ok;
    return static_cast<HealthState>(
        _shards[shard]->state.load(std::memory_order_relaxed));
}

void
HealthMonitor::sampleShard(std::size_t index)
{
    ShardHealth &shard = *_shards[index];
    const ShardHealthSample sample = _sampler(index);

    // Progress = the drain loop ran since the last sample. The first
    // sample only establishes the baseline; it can never count against
    // the shard.
    const bool progress =
        !shard.seen || sample.heartbeat != shard.last_heartbeat;
    shard.seen = true;
    shard.last_heartbeat = sample.heartbeat;

    // An idle shard (no backlog) is healthy no matter how long its
    // heartbeat sits still — stalling requires undrained work.
    if (progress || sample.queue_depth == 0)
        shard.bad_samples = 0;
    else
        ++shard.bad_samples;

    HealthState next = HealthState::Ok;
    if (shard.bad_samples >= _config.stalled_after)
        next = HealthState::Stalled;
    else if (shard.bad_samples >= _config.degraded_after)
        next = HealthState::Degraded;

    shard.health->set(static_cast<std::uint64_t>(next));
    shard.heartbeat->set(sample.heartbeat);
    shard.queue_depth->set(sample.queue_depth); // Gauge::max = high water
    shard.ack_age->set(sample.ack_age_ns);

    const auto current = static_cast<HealthState>(
        shard.state.load(std::memory_order_relaxed));
    if (next != current) {
        shard.state.store(static_cast<int>(next),
                          std::memory_order_relaxed);
        publishTransition(index, current, next, sample);
    }
}

void
HealthMonitor::publishTransition(std::size_t index, HealthState from,
                                 HealthState to,
                                 const ShardHealthSample &sample)
{
    _transitions.fetch_add(1, std::memory_order_relaxed);
    _transitions_metric->inc();

    const std::string reason =
        std::string(healthStateName(from)) + " -> " +
        healthStateName(to) +
        (to == HealthState::Ok
             ? " (drain progress resumed)"
             : " (no drain progress, backlog " +
                   std::to_string(sample.queue_depth) + ")");

    if (EventLog::instance().active()) {
        EventRecord record;
        record.type = EventType::HealthChange;
        record.shard = static_cast<std::int32_t>(index);
        record.op = healthStateName(to);
        record.arg0 = sample.heartbeat;
        record.arg1 = sample.queue_depth;
        record.reason = reason;
        EventLog::instance().append(record);
    }
    flight::record(flight::Subsystem::Health,
                   flight::Code::HealthTransition, 0,
                   static_cast<std::int32_t>(index),
                   static_cast<std::uint64_t>(from),
                   static_cast<std::uint64_t>(to));

    if (to == HealthState::Stalled) {
        logWarn("health: shard ", index, " STALLED (", reason, ")");
        // A stalled shard is the flight recorder's marquee trigger:
        // dump unconditionally (not rate-limited) so the pre-stall
        // records are preserved even if a fault storm already dumped.
        flight::dump("shard stalled");
    } else {
        logInfo("health: shard ", index, " ", reason);
    }
}

} // namespace telemetry
} // namespace hq
