#include "telemetry/event_log.h"

#include <chrono>

#include "telemetry/telemetry.h"

namespace hq {
namespace telemetry {

namespace {

HQ_TELEMETRY_HANDLE(recordsCounter, Counter, "eventlog.records")

} // namespace

const char *
eventTypeName(EventType type)
{
    switch (type) {
      case EventType::Violation:
        return "violation";
      case EventType::SeqGap:
        return "seq_gap";
      case EventType::EpochTimeout:
        return "epoch_timeout";
      case EventType::RingDrop:
        return "ring_drop";
      case EventType::CorruptMsg:
        return "corrupt_msg";
      case EventType::VerifierRestart:
        return "verifier_restart";
      case EventType::SilentAccept:
        return "silent_accept";
      case EventType::HealthChange:
        return "health_change";
      case EventType::FlightDump:
        return "flight_dump";
      case EventType::SpecKill:
        return "spec_kill";
    }
    return "unknown";
}

EventLog &
EventLog::instance()
{
    static EventLog log;
    return log;
}

bool
EventLog::open(const std::string &path)
{
    std::lock_guard<std::mutex> guard(_mutex);
    if (_out.is_open())
        _out.close();
    _out.open(path, std::ios::trunc);
    const bool ok = _out.is_open();
    _recorded.store(0, std::memory_order_relaxed);
    _active.store(ok, std::memory_order_relaxed);
    return ok;
}

void
EventLog::close()
{
    std::lock_guard<std::mutex> guard(_mutex);
    _active.store(false, std::memory_order_relaxed);
    if (_out.is_open()) {
        _out.flush();
        _out.close();
    }
}

namespace {

/** Escape the reason string for embedding in a JSON literal. */
void
appendEscaped(std::ofstream &out, const std::string &text)
{
    for (char c : text) {
        switch (c) {
          case '"':
            out << "\\\"";
            break;
          case '\\':
            out << "\\\\";
            break;
          case '\n':
            out << "\\n";
            break;
          case '\t':
            out << "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) >= 0x20)
                out << c;
        }
    }
}

} // namespace

void
EventLog::append(const EventRecord &record)
{
    if (!active())
        return;
    const auto wall_ms =
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::system_clock::now().time_since_epoch())
            .count();
    const std::uint64_t ts_ns = nowNs();

    std::lock_guard<std::mutex> guard(_mutex);
    if (!_out.is_open())
        return;
    _out << "{\"type\":\"" << eventTypeName(record.type)
         << "\",\"ts_wall_ms\":" << wall_ms << ",\"ts_ns\":" << ts_ns
         << ",\"pid\":" << record.pid << ",\"shard\":" << record.shard
         << ",\"policy\":\"";
    appendEscaped(_out, record.policy);
    _out << "\",\"op\":\"";
    appendEscaped(_out, record.op);
    _out << "\",\"arg0\":" << record.arg0 << ",\"arg1\":" << record.arg1
         << ",\"seq\":" << record.seq << ",\"lag_ns\":" << record.lag_ns
         << ",\"reason\":\"";
    appendEscaped(_out, record.reason);
    _out << "\"}\n";
    // Flush per record: violations usually precede a kill, and a
    // truncated audit line defeats the log's purpose.
    _out.flush();
    _recorded.fetch_add(1, std::memory_order_relaxed);
    recordsCounter().inc();
}

} // namespace telemetry
} // namespace hq
