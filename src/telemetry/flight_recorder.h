/**
 * @file
 * Flight recorder: a lock-free, per-thread ring of the last N fixed-size
 * structured records, always cheap enough to leave on in production.
 *
 * The verifier's security argument is *bounded asynchronous validation*:
 * a syscall may not retire until the owning shard has drained the
 * process's queue. When that bound is about to be violated — a wedged
 * drain loop, an SLO breach, a policy violation — the most valuable
 * evidence is what the enforcement pipeline did in the last few
 * milliseconds, which the metrics registry (monotonic totals) cannot
 * reconstruct. Each thread records into its own fixed ring with one
 * relaxed atomic store-sequence per 64-byte record; a dump walks every
 * ring, merges by timestamp and appends the snapshot as JSONL next to
 * the event log (`flight_header` + `flight_record` lines), emitting a
 * `flight_dump` event-log record as the cross-reference.
 *
 * Dump triggers: policy-violation verdicts, verification-lag SLO
 * breaches, fault-injection fires, shard health transitions to STALLED,
 * fatal signals (async-signal-safe path), and on demand. Triggered
 * dumps are rate-limited (requestDump) so a violation storm cannot turn
 * the recorder into a log flood.
 *
 * Cost model: disabled, every record() is one relaxed load + branch
 * (same discipline as telemetry::enabled(), so the <2% disabled-overhead
 * ctest gate holds). Enabled, a record is one clock read plus eight
 * relaxed 64-bit stores into a thread-local slot — no locks, no RMW on
 * shared cache lines. Readers (dump) race benignly with writers: a torn
 * record is confined to the one slot being overwritten, the same
 * tolerance the statsboard seqlock copy uses.
 */

#ifndef HQ_TELEMETRY_FLIGHT_RECORDER_H
#define HQ_TELEMETRY_FLIGHT_RECORDER_H

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace hq {
namespace telemetry {
namespace flight {

/** Component that emitted a record (JSONL "subsystem"). */
enum class Subsystem : std::uint32_t {
    Verifier = 0,
    Kernel,
    Ipc,
    Fault,
    Health,
    App, //!< harness/bench-defined records
};

/** What happened (JSONL "code"). Args are code-specific. */
enum class Code : std::uint32_t {
    DrainBatch = 0,   //!< arg0 = messages drained, arg1 = channel id
    Violation,        //!< arg0 = opcode, arg1 = message seq
    SyscallAck,       //!< arg0 = acks so far for pid
    SloBreach,        //!< arg0 = lag_ns, arg1 = slo_ns
    EpochTimeout,     //!< arg0 = waited_ns
    ProcessKilled,    //!< arg0 = 0
    SyscallResume,    //!< arg0 = 0
    FaultInjected,    //!< arg0 = site index, arg1 = injection count
    HealthTransition, //!< arg0 = from state, arg1 = to state
    Heartbeat,        //!< arg0 = heartbeat, arg1 = queue depth
    Custom,           //!< app-defined
};

const char *subsystemName(Subsystem subsystem);
const char *codeName(Code code);

/** One flight record; exactly 64 bytes (one cache line). */
struct Record
{
    std::uint64_t ts_ns = 0;  //!< monotonicRawNs() at record time
    std::uint64_t seq = 0;    //!< per-thread monotonic record index
    std::uint64_t pid = 0;    //!< monitored pid (0 = none)
    std::uint64_t arg0 = 0;
    std::uint64_t arg1 = 0;
    std::uint32_t subsystem = 0; //!< Subsystem
    std::uint32_t code = 0;      //!< Code
    std::int32_t shard = -1;     //!< verifier shard (-1 = none)
    std::uint32_t thread = 0;    //!< recorder slot id (stable per thread)
    std::uint64_t reserved = 0;  //!< pads the record to one cache line
};
static_assert(sizeof(Record) == 64, "flight records are one cache line");

/** Records retained per thread ring (power of two). */
constexpr std::size_t kRecordsPerThread = 512;
/** Concurrent recording threads tracked; later threads drop records. */
constexpr std::size_t kMaxThreads = 64;

namespace detail {
extern std::atomic<bool> g_enabled;
void record(Subsystem subsystem, Code code, std::uint64_t pid,
            std::int32_t shard, std::uint64_t arg0, std::uint64_t arg1);
} // namespace detail

/** True when the recorder is on (one relaxed load; hot-path safe). */
inline bool
enabled()
{
    return detail::g_enabled.load(std::memory_order_relaxed);
}

/** Turn recording on/off (--flight-recorder flag; tests). */
void setEnabled(bool on);

/**
 * Append one record to the calling thread's ring. Compiles to a single
 * branch when disabled; never blocks, never allocates after the
 * thread's first record.
 */
inline void
record(Subsystem subsystem, Code code, std::uint64_t pid,
       std::int32_t shard, std::uint64_t arg0 = 0, std::uint64_t arg1 = 0)
{
    if (!enabled())
        return;
    detail::record(subsystem, code, pid, shard, arg0, arg1);
}

/**
 * Open (truncate) the JSONL dump file; dumps append to it so one run's
 * triggered dumps land in a single stream. The descriptor is kept open
 * for the async-signal-safe path. An empty path closes the file.
 * @return true when the file is ready (or was closed on "").
 */
bool configure(const std::string &path);

/** Currently configured dump path ("" = none). */
std::string dumpPath();

/**
 * Snapshot every thread ring, merge by timestamp, and append the dump
 * to the configured file: one `flight_header` line (trigger, record
 * count) followed by one `flight_record` line per record. Also emits a
 * `flight_dump` record into the JSONL event log when active, so event
 * streams cross-reference their dumps.
 * @return number of records written (0 when no file is configured).
 */
std::size_t dump(const char *trigger);

/**
 * Rate-limited dump(): at most one dump per second fires regardless of
 * how many triggers ask (violation storms, per-message SLO breaches).
 * No-op when disabled or unconfigured.
 */
void requestDump(const char *trigger);

/** Copy out all live records, merged oldest-first (tests, tools). */
std::vector<Record> snapshot();

/**
 * Async-signal-safe dump of every ring to `fd` (same JSONL schema, no
 * timestamp merge — records appear per-ring). Only write(2) and stack
 * buffers; callable from a fatal-signal handler.
 */
void dumpSignalSafe(int fd, const char *trigger);

/**
 * Install fatal-signal handlers (SIGSEGV/SIGBUS/SIGILL/SIGFPE/SIGABRT)
 * that dumpSignalSafe() into the configured file and then re-raise with
 * default disposition, so a crashing run leaves its last records behind.
 */
void installFatalSignalDump();

/** Drop every ring's records and reset per-thread sequence state.
 *  Test isolation only — racing recorders may keep stale slots. */
void resetForTest();

} // namespace flight
} // namespace telemetry
} // namespace hq

#endif // HQ_TELEMETRY_FLIGHT_RECORDER_H
