/**
 * @file
 * The CFI designs evaluated in the paper (Table 3), each a combination
 * of an instrumentation pipeline and VM runtime behavior:
 *
 * | Design         | Mechanism                 | Back edge        |
 * |----------------|---------------------------|------------------|
 * | Baseline       | none                      | plain stack      |
 * | HQ-CFI-SfeStk  | AppendWrite messages      | safe stack       |
 * | HQ-CFI-RetPtr  | AppendWrite messages      | define/check-inv |
 * | Clang/LLVM CFI | signature-class checks    | safe stack+guard |
 * | CCFI           | cryptographic MACs        | per-frame MAC    |
 * | CPI            | safe pointer store        | safe stack       |
 *
 * CCFI and CPI are based on LLVM 3.4/3.3 in the paper and lack the
 * modern devirtualization optimizations, so their pipelines omit the
 * devirtualization pass (each design is normalized against a
 * version-specific baseline in the harnesses, as in §5).
 */

#ifndef HQ_CFI_DESIGN_H
#define HQ_CFI_DESIGN_H

#include <string>
#include <vector>

#include "common/stats.h"
#include "common/status.h"
#include "compiler/passes.h"
#include "runtime/vm.h"

namespace hq {

enum class CfiDesign {
    Baseline,
    HqSfeStk,
    HqRetPtr,
    ClangCfi,
    Ccfi,
    Cpi,
};

/** Static description of one design. */
struct DesignInfo
{
    CfiDesign design;
    std::string name;         //!< e.g. "HQ-CFI-SfeStk"
    LoweringOptions lowering; //!< pass-pipeline options
    bool devirtualize;        //!< modern-LLVM optimizations available
    bool optimize_messages;   //!< forwarding + elision (HQ only)
    // Runtime behavior:
    bool safe_stack;
    bool guard_pages;
    bool hq_messages;
    bool retptr_messages;
    bool ccfi_runtime;
    bool cpi_runtime;
    bool clangcfi_runtime;
};

/** Registry entry for a design. */
const DesignInfo &designInfo(CfiDesign design);

/** All designs, Baseline first. */
const std::vector<CfiDesign> &allDesigns();

/**
 * Instrument a module for the given design (runs its pass pipeline).
 * @param stats optional sink for per-pass statistics
 */
Status instrumentModule(ir::Module &module, CfiDesign design,
                        StatSet *stats = nullptr);

/** VM runtime configuration matching the design. */
VmConfig makeVmConfig(CfiDesign design);

} // namespace hq

#endif // HQ_CFI_DESIGN_H
