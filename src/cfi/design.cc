#include "cfi/design.h"

#include "common/log.h"

namespace hq {

namespace {

DesignInfo
makeInfo(CfiDesign design)
{
    DesignInfo info{};
    info.design = design;
    switch (design) {
      case CfiDesign::Baseline:
        info.name = "Baseline";
        info.lowering.mode = LoweringMode::None;
        info.devirtualize = true;
        break;
      case CfiDesign::HqSfeStk:
        info.name = "HQ-CFI-SfeStk";
        info.lowering.mode = LoweringMode::Hq;
        info.devirtualize = true;
        info.optimize_messages = true;
        info.safe_stack = true;
        info.hq_messages = true;
        break;
      case CfiDesign::HqRetPtr:
        info.name = "HQ-CFI-RetPtr";
        info.lowering.mode = LoweringMode::Hq;
        info.lowering.retptr_messages = true;
        info.devirtualize = true;
        info.optimize_messages = true;
        info.hq_messages = true;
        info.retptr_messages = true;
        break;
      case CfiDesign::ClangCfi:
        info.name = "Clang/LLVM CFI";
        info.lowering.mode = LoweringMode::ClangCfi;
        info.devirtualize = true;
        info.safe_stack = true;
        info.guard_pages = true; // Clang adds guard pages (§5.2)
        info.clangcfi_runtime = true;
        break;
      case CfiDesign::Ccfi:
        info.name = "CCFI";
        info.lowering.mode = LoweringMode::Ccfi;
        info.devirtualize = false; // LLVM 3.4 base
        info.ccfi_runtime = true;
        break;
      case CfiDesign::Cpi:
        info.name = "CPI";
        info.lowering.mode = LoweringMode::Cpi;
        info.devirtualize = false; // LLVM 3.3 base
        info.safe_stack = true;
        info.cpi_runtime = true;
        break;
    }
    return info;
}

} // namespace

const DesignInfo &
designInfo(CfiDesign design)
{
    static const DesignInfo kInfos[] = {
        makeInfo(CfiDesign::Baseline), makeInfo(CfiDesign::HqSfeStk),
        makeInfo(CfiDesign::HqRetPtr), makeInfo(CfiDesign::ClangCfi),
        makeInfo(CfiDesign::Ccfi),     makeInfo(CfiDesign::Cpi),
    };
    return kInfos[static_cast<int>(design)];
}

const std::vector<CfiDesign> &
allDesigns()
{
    static const std::vector<CfiDesign> kAll = {
        CfiDesign::Baseline, CfiDesign::HqSfeStk, CfiDesign::HqRetPtr,
        CfiDesign::ClangCfi, CfiDesign::Ccfi,     CfiDesign::Cpi,
    };
    return kAll;
}

Status
instrumentModule(ir::Module &module, CfiDesign design, StatSet *stats)
{
    const DesignInfo &info = designInfo(design);
    PassManager pm;
    if (info.devirtualize)
        pm.add(std::make_unique<DevirtualizationPass>());
    pm.add(std::make_unique<InitialLoweringPass>(info.lowering));
    if (info.optimize_messages) {
        pm.add(std::make_unique<StoreToLoadForwardingPass>());
        pm.add(std::make_unique<MessageElisionPass>());
    }
    pm.add(std::make_unique<FinalLoweringPass>(info.lowering));
    if (info.hq_messages)
        pm.add(std::make_unique<SyscallSyncPass>());

    Status status = pm.run(module);
    if (stats) {
        for (const auto &[name, value] : pm.stats().all())
            stats->increment(name, value);
    }
    return status;
}

VmConfig
makeVmConfig(CfiDesign design)
{
    const DesignInfo &info = designInfo(design);
    VmConfig config;
    config.safe_stack = info.safe_stack;
    config.guard_pages = info.guard_pages;
    config.hq_messages = info.hq_messages;
    config.retptr_messages = info.retptr_messages;
    config.ccfi_runtime = info.ccfi_runtime;
    config.cpi_runtime = info.cpi_runtime;
    config.clangcfi_runtime = info.clangcfi_runtime;
    return config;
}

} // namespace hq
