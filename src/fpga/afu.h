/**
 * @file
 * Device model of the AppendWrite-FPGA Accelerator Functional Unit
 * (paper §3.1.1).
 *
 * The real artifact is a custom AFU on an Intel Arria 10 PAC: the
 * monitored program decomposes each message into word-granularity
 * uncached MMIO register writes; the AFU reassembles them, stamps the
 * process identifier from a kernel-managed PID register (updated on every
 * context switch, guaranteeing authenticity), attaches a consecutive
 * per-message counter (the AFU has no back-pressure, so the verifier
 * detects drops via counter gaps), and writes the message back into a
 * pinned huge-page circular buffer in the verifier's address space.
 *
 * This model reproduces the register-transaction interface exactly:
 *  - reg kRegArg0: 8-byte latch for the first operation argument;
 *  - regs kRegCommitBase + 8*opcode: operation-specific commit registers;
 *    writing the second argument commits (opcode, latched arg0, data).
 *    One-argument operations write their argument straight to the commit
 *    register, so every message costs at most two MMIO writes.
 *  - reg kRegPid: privileged PID register, written by the kernel model.
 *
 * The MMIO-write cost (store-buffer occupancy + uncore traversal + PCIe
 * posted TLP, measured at ~102 ns per message in Table 2) is modeled by
 * an optional calibrated busy-wait per register write, so end-to-end runs
 * experience a genuine sender-side stall.
 */

#ifndef HQ_FPGA_AFU_H
#define HQ_FPGA_AFU_H

#include <atomic>
#include <cstdint>

#include "common/types.h"
#include "ipc/message.h"
#include "ipc/spsc_ring.h"

namespace hq {

/** Tunables of the FPGA device model. */
struct FpgaConfig
{
    /** Host circular-buffer capacity, in messages (paper: 1 GB). */
    std::size_t host_buffer_messages = 1 << 16;
    /** Modeled latency of one uncached MMIO posted write, nanoseconds. */
    std::uint32_t mmio_write_ns = 51;
    /** Disable the latency model (functional-only mode for tests). */
    bool model_latency = true;
};

/** The AFU register file and reassembly/writeback pipeline. */
class FpgaAfu
{
  public:
    /// MMIO offsets (byte addresses in the AFU BAR).
    static constexpr std::uint32_t kRegArg0 = 0x00;
    static constexpr std::uint32_t kRegCommitBase = 0x100;
    /// Privileged registers (kernel-mapped page).
    static constexpr std::uint32_t kRegPid = 0x800;

    explicit FpgaAfu(const FpgaConfig &config);

    /**
     * One userspace MMIO posted write of 8 bytes. Writes to the commit
     * window assemble and enqueue a message; unknown offsets are ignored
     * (matching posted-write semantics: no response, no fault).
     */
    void mmioWrite(std::uint32_t offset, std::uint64_t data);

    /** Kernel context-switch hook: load the PID register. */
    void setPidRegister(Pid pid);

    /** Verifier-side read from the host circular buffer. */
    bool hostRead(Message &out);

    /**
     * Verifier-side bulk read: dequeue up to max_count messages in
     * writeback order (the pinned host buffer is contiguous, so the
     * verifier drains whole cache lines per cursor update).
     */
    std::size_t hostReadBatch(Message *out, std::size_t max_count);

    /**
     * Zero-copy host read: view the queued writeback slots in place
     * (the pinned buffer is the verifier's own mapping) and release
     * them with hostConsume() only after they verify.
     */
    std::size_t hostPeekSpan(RecvSpan &out) { return _host_buffer.peekSpan(out); }

    /** Release the first count slots of the last hostPeekSpan() view. */
    void hostConsume(std::size_t count) { _host_buffer.consume(count); }

    /** Messages written back but not yet read by the verifier. */
    std::size_t hostPending() const { return _host_buffer.size(); }

    /** Messages dropped because the host buffer was full (no back-pressure). */
    std::uint64_t droppedMessages() const
    {
        return _dropped.load(std::memory_order_relaxed);
    }

    /** Number of MMIO writes needed to transmit op (1 or 2). */
    static int mmioWritesFor(Opcode op);

    const FpgaConfig &config() const { return _config; }

  private:
    /// Model the uncached-store + PCIe posted-TLP cost of one MMIO write.
    void stallForMmioWrite() const;

    FpgaConfig _config;
    SpscRing _host_buffer;
    std::uint64_t _arg0_latch = 0;
    std::atomic<Pid> _pid_register{0};
    std::uint32_t _next_seq = 0;
    std::atomic<std::uint64_t> _dropped{0};
};

} // namespace hq

#endif // HQ_FPGA_AFU_H
