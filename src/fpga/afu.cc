#include "fpga/afu.h"

#include <chrono>
#include <thread>

#include "faultinject/fault.h"
#include "ipc/message.h"
#include "telemetry/event_log.h"
#include "telemetry/telemetry.h"

namespace hq {

namespace {

HQ_TELEMETRY_HANDLE(appendHist, Histogram, "fpga.append_ns")
HQ_TELEMETRY_HANDLE(messagesCounter, Counter, "fpga.messages")
HQ_TELEMETRY_HANDLE(droppedCounter, Counter, "fpga.dropped")

} // namespace

FpgaAfu::FpgaAfu(const FpgaConfig &config)
    : _config(config), _host_buffer(config.host_buffer_messages)
{
}

int
FpgaAfu::mmioWritesFor(Opcode op)
{
    switch (op) {
      case Opcode::Init:
      case Opcode::Syscall:
      case Opcode::BlockSize:
      case Opcode::PointerInvalidate:
      case Opcode::AllocCheck:
      case Opcode::AllocDestroy:
      case Opcode::Heartbeat:
        return 1; // single argument: commit register only
      default:
        return 2; // arg0 latch + commit register
    }
}

void
FpgaAfu::stallForMmioWrite() const
{
    if (!_config.model_latency || _config.mmio_write_ns == 0)
        return;
    using Clock = std::chrono::steady_clock;
    const auto deadline =
        Clock::now() + std::chrono::nanoseconds(_config.mmio_write_ns);
    while (Clock::now() < deadline) {
        // Busy-wait: uncached MMIO stores occupy store-buffer entries
        // until retirement, stalling the sender core.
    }
}

void
FpgaAfu::mmioWrite(std::uint32_t offset, std::uint64_t data)
{
    // Device append latency: the sender-side cost of one posted MMIO
    // write, modeled stall included.
    telemetry::ScopedTimer append_timer(appendHist());

    stallForMmioWrite();

    if (offset == kRegArg0) {
        _arg0_latch = data;
        return;
    }

    const std::uint32_t commit_end =
        kRegCommitBase +
        8 * static_cast<std::uint32_t>(Opcode::NumOpcodes);
    if (offset >= kRegCommitBase && offset < commit_end &&
        (offset & 7) == 0) {
        const auto op =
            static_cast<Opcode>((offset - kRegCommitBase) / 8);

        Message message;
        message.op = op;
        if (mmioWritesFor(op) == 1) {
            message.arg0 = data;
        } else {
            message.arg0 = _arg0_latch;
            message.arg1 = data;
        }
        message.pid = _pid_register.load(std::memory_order_relaxed);
        message.seq = _next_seq++;
        // Device-side CRC stamp: the AFU owns pid/seq, so it computes
        // the checksum last; host-side corruption is then detectable.
        message.pad = messageCrc(message);

        if (faultinject::fire(faultinject::Site::AfuDoorbellDelay)) {
            // Doorbell serviced late: the message becomes visible to
            // the host only after the delay (pure latency fault).
            std::this_thread::sleep_for(std::chrono::microseconds(50));
        }

        const bool overflow =
            faultinject::fire(faultinject::Site::AfuOverflow);
        if (overflow || !_host_buffer.tryPush(message)) {
            // No back-pressure mechanism: the message is lost. The
            // verifier will observe a gap in the sequence counter and
            // must terminate the monitored program (integrity violation).
            _dropped.fetch_add(1, std::memory_order_relaxed);
            if (telemetry::enabled())
                droppedCounter().inc();
            if (telemetry::EventLog::instance().active()) {
                telemetry::EventRecord record;
                record.type = telemetry::EventType::RingDrop;
                record.pid = message.pid;
                record.op = opcodeName(message.op);
                record.arg0 = message.arg0;
                record.arg1 = message.arg1;
                record.seq = message.seq;
                record.reason = "FPGA host buffer full";
                telemetry::EventLog::instance().append(record);
            }
        } else if (telemetry::enabled()) {
            messagesCounter().inc();
        }
        return;
    }

    // Posted writes to unmapped offsets complete without effect.
}

void
FpgaAfu::setPidRegister(Pid pid)
{
    _pid_register.store(pid, std::memory_order_relaxed);
}

bool
FpgaAfu::hostRead(Message &out)
{
    return _host_buffer.tryPop(out);
}

std::size_t
FpgaAfu::hostReadBatch(Message *out, std::size_t max_count)
{
    return _host_buffer.tryPopBatch(out, max_count);
}

} // namespace hq
