/**
 * @file
 * Channel adapter over the FPGA device model — the "-FPGA" variant.
 *
 * send() performs the same register-level transaction sequence the
 * paper's runtime library uses: latch arg0 (two-argument operations
 * only), then write the operation-specific commit register. The PID is
 * never supplied by the sender; the AFU stamps it from its kernel-managed
 * register, which is what gives the FPGA path message authenticity.
 */

#ifndef HQ_FPGA_FPGA_CHANNEL_H
#define HQ_FPGA_FPGA_CHANNEL_H

#include "fpga/afu.h"
#include "ipc/channel.h"

namespace hq {

class FpgaChannel : public Channel
{
  public:
    explicit FpgaChannel(const FpgaConfig &config = FpgaConfig());

    Status sendImpl(const Message &message) override;
    bool tryRecv(Message &out) override;
    std::size_t tryRecvBatch(Message *out, std::size_t max_count) override;
    /// The device stamps one self-checking v1 message per slot, so the
    /// channel stays v1-only — but the verifier can still validate
    /// those messages in place in the pinned host buffer.
    bool tryPeekSpan(RecvSpan &out) override
    {
        return _afu.hostPeekSpan(out) != 0;
    }
    void consumeSlots(std::size_t count) override
    {
        _afu.hostConsume(count);
    }
    std::size_t pending() const override { return _afu.hostPending(); }
    const ChannelTraits &traits() const override { return _traits; }

    /** Direct access to the device model (kernel/verifier interfaces). */
    FpgaAfu &afu() { return _afu; }
    const FpgaAfu &afu() const { return _afu; }

  private:
    FpgaAfu _afu;
    ChannelTraits _traits;
};

} // namespace hq

#endif // HQ_FPGA_FPGA_CHANNEL_H
