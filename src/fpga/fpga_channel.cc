#include "fpga/fpga_channel.h"

namespace hq {

FpgaChannel::FpgaChannel(const FpgaConfig &config)
    : _afu(config),
      _traits{"AppendWrite-FPGA", /*appendOnly=*/true,
              /*asyncValidation=*/true, "Mem. Write"}
{
}

Status
FpgaChannel::sendImpl(const Message &message)
{
    const std::uint32_t commit_reg =
        FpgaAfu::kRegCommitBase +
        8 * static_cast<std::uint32_t>(message.op);

    if (FpgaAfu::mmioWritesFor(message.op) == 1) {
        _afu.mmioWrite(commit_reg, message.arg0);
    } else {
        _afu.mmioWrite(FpgaAfu::kRegArg0, message.arg0);
        _afu.mmioWrite(commit_reg, message.arg1);
    }
    return Status::ok();
}

bool
FpgaChannel::tryRecv(Message &out)
{
    return _afu.hostRead(out);
}

std::size_t
FpgaChannel::tryRecvBatch(Message *out, std::size_t max_count)
{
    return _afu.hostReadBatch(out, max_count);
}

} // namespace hq
