#include "sim/core_model.h"

namespace hq {

using ir::IrOp;

CoreModel::CoreModel(CoreConfig config) : _config(config) {}

double
CoreModel::draw()
{
    _rng_state = _rng_state * 6364136223846793005ULL + 1442695040888963407ULL;
    return static_cast<double>(_rng_state >> 11) * 0x1.0p-53;
}

void
CoreModel::onInstr(const ir::Instr &instr)
{
    ++_instructions;

    int uops = 1;
    bool is_load = false;
    bool is_cond_branch = false;
    bool is_appendwrite = false;

    switch (instr.op) {
      case IrOp::Nop:
      case IrOp::ConstInt:
      case IrOp::FuncAddr:
      case IrOp::GlobalAddr:
        uops = 1;
        break;
      case IrOp::Alloca:
      case IrOp::Arith:
      case IrOp::Cast:
      case IrOp::RetAddrAddr:
        uops = 1;
        break;
      case IrOp::Load:
      case IrOp::SafeLoad:
        uops = 1;
        is_load = true;
        break;
      case IrOp::Store:
      case IrOp::SafeStore:
        uops = 2; // store-address + store-data
        break;
      case IrOp::Memcpy:
      case IrOp::Memmove:
        uops = 16; // rep-style block sequence (size-independent approx)
        is_load = true;
        break;
      case IrOp::Malloc:
      case IrOp::Free:
      case IrOp::Realloc:
        uops = 30; // allocator fast path
        is_load = true;
        break;
      case IrOp::CallDirect:
        uops = 3; // call + frame setup
        break;
      case IrOp::CallIndirect:
      case IrOp::VCall:
        uops = 4;
        is_load = true; // target load
        break;
      case IrOp::Ret:
        uops = 3;
        is_load = true; // return-pointer load
        break;
      case IrOp::Br:
        uops = 1;
        break;
      case IrOp::CondBr:
        uops = 1;
        is_cond_branch = true;
        break;
      case IrOp::Syscall:
        // Userspace cycles only (§5.3.1): syscall time excluded.
        uops = 2;
        break;

      // --- AppendWrite messages -------------------------------------
      case IrOp::HqDefine:
      case IrOp::HqCheck:
      case IrOp::HqInvalidate:
      case IrOp::HqCheckInvalidate:
      case IrOp::HqSyscallMsg:
      case IrOp::HqBlockCopy:
      case IrOp::HqBlockMove:
      case IrOp::HqBlockInvalidate:
      case IrOp::DfiWriteMsg:
      case IrOp::DfiReadMsg:
      case IrOp::LabelDefMsg:
      case IrOp::LabelCheckMsg:
      case IrOp::LabelJoinMsg:
        is_appendwrite = true;
        break;
      case IrOp::HqGuardEnter:
      case IrOp::HqGuardExit:
        uops = 2; // flag load + store
        break;

      // --- Baseline designs ------------------------------------------
      case IrOp::CfiTypeCheck:
        uops = 4; // mask, load class, compare, branch
        is_load = true;
        break;
      case IrOp::MacDefine:
      case IrOp::MacCheck:
        uops = 12; // AESENC + table access + compare
        is_load = true;
        break;
      default:
        uops = 1;
        break;
    }

    if (is_appendwrite) {
        ++_appendwrites;
        // Both variants first compose the 32-byte message in memory
        // (the AppendWrite instruction takes a pointer to it): 4 stores.
        if (_config.hw_appendwrite) {
            // AppendWrite-µarch: compose + a single AppendWrite µop
            // (the store-address µop uses AppendAddr directly — one
            // fewer µop than a normal store — and bypasses the TLB).
            uops = 5;
        } else {
            // Software MODEL: compose, then fetch/bounds-check/
            // increment the shared AppendAddr, then copy the message
            // with ordinary stores; the shared header line ping-pongs
            // with the verifier core.
            uops = 13;
            if (draw() < _config.model_shared_miss)
                _stall_cycles += _config.mem_latency;
        }
    }

    if (is_load) {
        const double p = draw();
        if (p < _config.l2_miss)
            _stall_cycles += _config.mem_latency;
        else if (p < _config.l2_miss + _config.l1_miss)
            _stall_cycles += _config.l2_latency;
    }

    if (is_cond_branch && draw() < _config.mispredict)
        _stall_cycles += _config.mispredict_penalty;

    _uops += uops;
}

std::uint64_t
CoreModel::cycles() const
{
    return _uops / static_cast<std::uint64_t>(_config.issue_width) +
           _stall_cycles;
}

} // namespace hq
