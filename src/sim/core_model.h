/**
 * @file
 * Cycle-approximate out-of-order core model — the reproduction's
 * substitute for ZSim (paper §5.3.1, Figure 4).
 *
 * The model consumes the VM's dynamic instruction stream and charges
 * micro-ops and memory latency against a superscalar issue budget:
 *
 *  - every IR instruction maps to a static µop count;
 *  - loads probabilistically (deterministically hashed) miss L1/L2 and
 *    stall;
 *  - conditional branches mispredict at a fixed rate and pay a redirect
 *    penalty;
 *  - AppendWrite messages cost either the software-MODEL sequence
 *    (fetch + check + increment of AppendAddr in shared memory, then
 *    the copy: several µops and a shared-line access) or the hardware
 *    AppendWrite-µarch instruction (a single store µop: the
 *    store-address µop reuses AppendAddr directly, one *fewer* µop
 *    than a normal store, and no TLB check — §3.1.2).
 *
 * Comparing total cycles of the instrumented program under the two
 * AppendWrite costings against the uninstrumented baseline regenerates
 * Figure 4's MODEL-vs-SIM comparison; as in the paper, system-call time
 * is excluded (userspace cycles only).
 */

#ifndef HQ_SIM_CORE_MODEL_H
#define HQ_SIM_CORE_MODEL_H

#include <cstdint>

#include "runtime/vm.h"

namespace hq {

/** Core/cache parameters (defaults resemble a desktop-class OoO core). */
struct CoreConfig
{
    int issue_width = 4;       //!< µops issued per cycle
    int l2_latency = 12;       //!< cycles, beyond the L1 hit (pipelined)
    int mem_latency = 180;     //!< cycles for a memory access
    double l1_miss = 0.04;     //!< per-load L1 miss probability
    double l2_miss = 0.01;     //!< per-load L2 (to memory) probability
    double mispredict = 0.04;  //!< conditional-branch mispredict rate
    int mispredict_penalty = 14;
    /**
     * Hardware AppendWrite (the -SIM costing): messages are single
     * store µops. When false, the software MODEL costing applies.
     */
    bool hw_appendwrite = false;
    /** Shared AppendAddr cacheline miss rate under the software model. */
    double model_shared_miss = 0.12;
};

class CoreModel : public CycleSink
{
  public:
    explicit CoreModel(CoreConfig config = CoreConfig());

    void onInstr(const ir::Instr &instr) override;

    /** Total simulated cycles (µops/width + stall cycles). */
    std::uint64_t cycles() const;

    std::uint64_t instructions() const { return _instructions; }
    std::uint64_t uops() const { return _uops; }
    std::uint64_t appendwrites() const { return _appendwrites; }

  private:
    /** Deterministic per-event pseudo-random draw in [0,1). */
    double draw();

    CoreConfig _config;
    std::uint64_t _instructions = 0;
    std::uint64_t _uops = 0;
    std::uint64_t _stall_cycles = 0;
    std::uint64_t _appendwrites = 0;
    std::uint64_t _rng_state = 0x853c49e6748fea9bULL;
};

} // namespace hq

#endif // HQ_SIM_CORE_MODEL_H
