/**
 * @file
 * Deterministic fault injection for the HerQules enforcement channel.
 *
 * HerQules' security argument is *fail closed*: if AppendWrite messages
 * are lost, duplicated, corrupted or delayed -- or the verifier dies --
 * the kernel module must keep the monitored program paused at syscalls
 * and eventually deny them (PAPER.md section 4, 6.1). This subsystem
 * makes those failures reproducible on demand so tests and chaos runs
 * can assert recovery or safe denial, never silent acceptance.
 *
 * Design goals, in order:
 *  1. Zero cost when disabled. Every injection point is guarded by
 *     `faultinject::fire(site)`, whose inline fast path is one relaxed
 *     atomic load of a process-global `armed` flag (the same discipline
 *     as `telemetry::enabled()`), so the <2% disabled-overhead ctest
 *     gate still holds.
 *  2. Deterministic. Each site owns an independent xorshift64 stream
 *     seeded from splitmix64(seed ^ site); replaying the same spec +
 *     seed against the same workload fires the same faults.
 *  3. Thread-safe arming. All per-site state is relaxed atomics so a
 *     test can arm/disarm while worker threads run (TSan-clean).
 *
 * Spec grammar (CLI `--fault-spec=...` or env `HQ_FAULT_SPEC`):
 *
 *     spec    := entry ("," entry)*
 *     entry   := "seed=" N | site ":" rate [":" after_n [":" max_fires]]
 *     rate    := probability in [0,1]; 1 fires on every eligible event
 *     after_n := skip the first N eligible events (default 0)
 *     max_fires := stop after N injections; 0 = unlimited (default)
 *
 * e.g. `--fault-spec=seed=7,ring_drop:0.01,verifier_crash:1:500:1`
 * drops ~1% of ring pushes and crashes the verifier exactly once, at
 * the 501st message it handles.
 */

#ifndef HQ_FAULTINJECT_FAULT_H
#define HQ_FAULTINJECT_FAULT_H

#include <atomic>
#include <cstdint>
#include <string>

#include "common/status.h"

namespace hq {

struct Message;

namespace faultinject {

/** Every injection point in the enforcement pipeline. */
enum class Site : int {
    // SPSC / xproc ring push path.
    RingDrop = 0,     //!< push "succeeds" but the slot is never written
    RingDup,          //!< message stored twice under one send
    RingCorrupt,      //!< one bit flipped in the stored message
    RingStall,        //!< push reports full even when there is room
    // Channel transports (socket/pipe/mq send path).
    TransportError,   //!< simulated EAGAIN / short write on one attempt
    TransportDelay,   //!< latency spike before the transport send
    // FPGA AFU device model.
    AfuOverflow,      //!< host ring treated as full: message dropped
    AfuDoorbellDelay, //!< doorbell serviced late (delayed visibility)
    // Kernel module model.
    KernelLostNotify, //!< verifier's syscallResume never lands
    KernelSpuriousWake, //!< waiter wakes early without sync_ok
    KernelEpochDelay, //!< epoch advance delayed by one extra period
    // Verifier event loop.
    VerifierCrash,    //!< verifier dies while handling a message
    VerifierSlowPoll, //!< poll pass starts late
    // Wire format v2 frame path.
    FrameCorrupt,     //!< one bit flipped in an encoded frame (post-CRC)
    // Shard health watchdog.
    VerifierShardStall, //!< one shard's drain loop wedges (sticky)
    NumSites,
};

constexpr int kNumSites = static_cast<int>(Site::NumSites);

/** Stable lowercase name used in specs, counters and docs. */
const char *siteName(Site site);

/** Parse a spec-grammar site name; false if unknown. */
bool siteFromName(const std::string &name, Site &out);

/** Latency-only sites never lose information, so the silent-accept
 *  audit does not require a detector to have fired for them. */
bool siteIsLatencyOnly(Site site);

namespace detail {
extern std::atomic<bool> g_armed;
} // namespace detail

/** True iff any fault site is armed. One relaxed load; inline. */
inline bool
armed()
{
    return detail::g_armed.load(std::memory_order_relaxed);
}

/**
 * Process-wide fault plan: per-site probability / trigger-count state.
 *
 * Probabilities are stored as 64-bit fixed point (threshold =
 * rate * 2^64) so the per-event decision is one xorshift64 draw and an
 * unsigned compare -- no floating point on the injection path.
 */
class FaultPlan
{
  public:
    static constexpr std::uint64_t kDefaultSeed = 0x48515155; //!< "HQQU"

    static FaultPlan &instance();

    /**
     * Reset, then parse and apply a full spec string (grammar above).
     * Arms the global flag iff at least one site was configured.
     * On parse error the plan is left fully disarmed.
     */
    Status configure(const std::string &spec);

    /** Arm one site programmatically (tests). rate in [0,1]. */
    void arm(Site site, double rate, std::uint64_t after_n = 0,
             std::uint64_t max_fires = 0);

    /** Disarm every site and clear all counters; drops the global flag. */
    void reset();

    /** Set the base seed and re-derive every site's RNG stream.
     *  Also resets eligible/injected counts so a replay is exact. */
    void setSeed(std::uint64_t seed);
    std::uint64_t seed() const { return _seed.load(std::memory_order_relaxed); }

    /**
     * The per-event decision: counts the event as eligible, then
     * returns true iff the fault should be injected here. Called only
     * when armed() -- use the free function `fire()` from hot paths.
     */
    bool fire(Site site);

    /** How many times `site` was actually injected / was eligible. */
    std::uint64_t injected(Site site) const;
    std::uint64_t eligible(Site site) const;

    /** Fold a forked child's counts into this plan so the parent's
     *  emitAuditRecords() judges the whole process tree. */
    void addCounts(Site site, std::uint64_t injected,
                   std::uint64_t eligible);

    /** Deterministic 64-bit stream shared by corruption helpers. */
    std::uint64_t randomBits();

    /** Human-readable one-line summary of the armed sites. */
    std::string describe() const;

  private:
    struct SiteState
    {
        std::atomic<std::uint64_t> threshold{0}; //!< rate * 2^64; 0 = off
        std::atomic<std::uint64_t> after_n{0};
        std::atomic<std::uint64_t> max_fires{0}; //!< 0 = unlimited
        std::atomic<std::uint64_t> eligible{0};
        std::atomic<std::uint64_t> injected{0};
        std::atomic<std::uint64_t> rng{1};
        void *counter = nullptr; //!< telemetry::Counter*, resolved at arm
    };

    FaultPlan();

    void reseedSites();
    void refreshArmed();

    std::atomic<std::uint64_t> _seed{kDefaultSeed};
    std::atomic<std::uint64_t> _shared_rng{1};
    SiteState _sites[kNumSites];
};

/**
 * Hot-path gate: false (one relaxed load) when nothing is armed,
 * otherwise consult the plan. Never throws, never allocates.
 */
inline bool
fire(Site site)
{
    return armed() && FaultPlan::instance().fire(site);
}

/** Flip one deterministically chosen bit anywhere in the message
 *  (including the CRC field -- every flip must be detectable). */
void corrupt(Message &message);

/** Flip one deterministically chosen bit anywhere in an arbitrary
 *  buffer (v2 frames: header or body, including the CRC fields --
 *  every flip must be detectable by the frame decoder). */
void corruptBytes(void *data, std::size_t len);

/** configure() on the singleton; arms the global flag on success. */
Status configureFromSpec(const std::string &spec);

/** reset() on the singleton (test teardown). */
void disarmAll();

/**
 * Strip `--fault-spec=SPEC` from argv (mirrors
 * telemetry::handleBenchArgs); falls back to env HQ_FAULT_SPEC. A
 * malformed spec is a hard error (exit 2): a chaos run must never
 * silently degrade into a fault-free run.
 */
void handleArgs(int &argc, char **argv);

/**
 * Silent-accept audit: for every armed, non-latency-only site that
 * actually injected faults, check that at least one matching detector
 * counter moved (verifier violations, epoch timeouts, FPGA drops,
 * transport send errors, ...). Emits one `silent_accept` event-log
 * record per undetected class (when an event log is active) and
 * returns the number of silently accepted classes -- 0 means every
 * injected fault class was caught or safely denied.
 */
int emitAuditRecords();

/**
 * Snapshot the current values of every detector counter the audit
 * consults, so emitAuditRecords() judges only what happened after this
 * point. Called automatically by FaultPlan::reset()/configure();
 * exposed for tests that arm sites without reconfiguring.
 */
void captureDetectorBaselines();

/**
 * Cross-process audit plumbing. In a fork()-based deployment the
 * faults fire in the monitored child while the detectors (verifier
 * violations, epoch timeouts) live in the verifier parent, so neither
 * process alone can run a meaningful silent-accept audit. The child
 * serializes its side at exit and hands it back (pipe, file); the
 * parent absorbs it, making its plan counts and detector deltas cover
 * the whole tree, then runs emitAuditRecords() as usual.
 */

/** Serialize this process's injected/eligible counts and
 *  detector-counter deltas (relative to the captured baselines). */
std::string exportCrossProcessReport();

/** Parse a child's report: injected counts fold into the plan,
 *  detector deltas add onto this process's registry counters.
 *  @return false when the report is malformed (audit must then be
 *          treated as failed, not skipped). */
bool absorbCrossProcessReport(const std::string &report);

} // namespace faultinject
} // namespace hq

#endif // HQ_FAULTINJECT_FAULT_H
