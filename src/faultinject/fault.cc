#include "faultinject/fault.h"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <sstream>
#include <vector>

#include "common/log.h"
#include "ipc/message.h"
#include "telemetry/event_log.h"
#include "telemetry/flight_recorder.h"
#include "telemetry/telemetry.h"

namespace hq {
namespace faultinject {

namespace detail {
std::atomic<bool> g_armed{false};
} // namespace detail

namespace {

struct SiteInfo
{
    const char *name;
    bool latency_only;
};

constexpr SiteInfo kSiteInfo[kNumSites] = {
    {"ring_drop", false},
    {"ring_dup", false},
    {"ring_corrupt", false},
    {"ring_stall", false},
    {"transport_error", false},
    {"transport_delay", true},
    {"afu_overflow", false},
    {"afu_doorbell_delay", true},
    {"kernel_lost_notify", false},
    {"kernel_spurious_wake", true},
    {"kernel_epoch_delay", true},
    {"verifier_crash", false},
    {"verifier_slow_poll", true},
    {"frame_corrupt", false},
    // Latency-only: a wedged shard delays validation but loses nothing;
    // the kernel's epoch timeout (and the health watchdog) catch it.
    {"verifier_shard_stall", true},
};

// splitmix64: seeds the per-site xorshift64 streams (src/common/rng.h
// uses the same finalizer for xoshiro seeding).
std::uint64_t
splitmix64(std::uint64_t &state)
{
    std::uint64_t z = (state += 0x9E3779B97F4A7C15ull);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
}

std::uint64_t
xorshift64(std::uint64_t x)
{
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    return x;
}

// rate in [0,1] -> 64-bit fixed-point threshold; UINT64_MAX == always.
std::uint64_t
rateToThreshold(double rate)
{
    if (rate <= 0.0)
        return 0;
    if (rate >= 1.0)
        return UINT64_MAX;
    const double scaled = rate * 18446744073709551616.0; // 2^64
    const auto threshold = static_cast<std::uint64_t>(scaled);
    return threshold == 0 ? 1 : threshold;
}

int
siteIndex(Site site)
{
    return static_cast<int>(site);
}

} // namespace

const char *
siteName(Site site)
{
    const int index = siteIndex(site);
    if (index < 0 || index >= kNumSites)
        return "unknown";
    return kSiteInfo[index].name;
}

bool
siteFromName(const std::string &name, Site &out)
{
    for (int i = 0; i < kNumSites; ++i) {
        if (name == kSiteInfo[i].name) {
            out = static_cast<Site>(i);
            return true;
        }
    }
    return false;
}

bool
siteIsLatencyOnly(Site site)
{
    const int index = siteIndex(site);
    return index >= 0 && index < kNumSites && kSiteInfo[index].latency_only;
}

FaultPlan &
FaultPlan::instance()
{
    static FaultPlan plan;
    return plan;
}

FaultPlan::FaultPlan()
{
    reseedSites();
}

void
FaultPlan::reseedSites()
{
    const std::uint64_t base = _seed.load(std::memory_order_relaxed);
    for (int i = 0; i < kNumSites; ++i) {
        std::uint64_t stream = base ^ (0x5157ull * (i + 1));
        std::uint64_t derived = splitmix64(stream);
        if (derived == 0)
            derived = 1; // xorshift64 must never hit the zero fixpoint
        _sites[i].rng.store(derived, std::memory_order_relaxed);
    }
    std::uint64_t shared = base ^ 0xC0FFEEull;
    std::uint64_t derived = splitmix64(shared);
    _shared_rng.store(derived == 0 ? 1 : derived, std::memory_order_relaxed);
}

void
FaultPlan::refreshArmed()
{
    bool any = false;
    for (int i = 0; i < kNumSites; ++i) {
        if (_sites[i].threshold.load(std::memory_order_relaxed) != 0) {
            any = true;
            break;
        }
    }
    detail::g_armed.store(any, std::memory_order_relaxed);
}

void
FaultPlan::reset()
{
    captureDetectorBaselines();
    detail::g_armed.store(false, std::memory_order_relaxed);
    for (int i = 0; i < kNumSites; ++i) {
        _sites[i].threshold.store(0, std::memory_order_relaxed);
        _sites[i].after_n.store(0, std::memory_order_relaxed);
        _sites[i].max_fires.store(0, std::memory_order_relaxed);
        _sites[i].eligible.store(0, std::memory_order_relaxed);
        _sites[i].injected.store(0, std::memory_order_relaxed);
    }
    _seed.store(kDefaultSeed, std::memory_order_relaxed);
    reseedSites();
}

void
FaultPlan::setSeed(std::uint64_t seed)
{
    _seed.store(seed, std::memory_order_relaxed);
    for (int i = 0; i < kNumSites; ++i) {
        _sites[i].eligible.store(0, std::memory_order_relaxed);
        _sites[i].injected.store(0, std::memory_order_relaxed);
    }
    reseedSites();
}

void
FaultPlan::arm(Site site, double rate, std::uint64_t after_n,
               std::uint64_t max_fires)
{
    const int index = siteIndex(site);
    if (index < 0 || index >= kNumSites)
        return;
    SiteState &state = _sites[index];
    // Resolve the per-site injection counter once, off the hot path.
    state.counter = &telemetry::Registry::instance().counter(
        std::string("fault.injected.") + kSiteInfo[index].name);
    state.after_n.store(after_n, std::memory_order_relaxed);
    state.max_fires.store(max_fires, std::memory_order_relaxed);
    state.threshold.store(rateToThreshold(rate), std::memory_order_relaxed);
    refreshArmed();
}

bool
FaultPlan::fire(Site site)
{
    const int index = siteIndex(site);
    if (index < 0 || index >= kNumSites)
        return false;
    SiteState &state = _sites[index];
    const std::uint64_t n =
        state.eligible.fetch_add(1, std::memory_order_relaxed) + 1;
    const std::uint64_t threshold =
        state.threshold.load(std::memory_order_relaxed);
    if (threshold == 0)
        return false;
    if (n <= state.after_n.load(std::memory_order_relaxed))
        return false;
    const std::uint64_t cap = state.max_fires.load(std::memory_order_relaxed);
    if (cap != 0 && state.injected.load(std::memory_order_relaxed) >= cap)
        return false;
    if (threshold != UINT64_MAX) {
        // Per-site xorshift64 stream; a relaxed RMW keeps concurrent
        // callers race-free (each draw is consumed exactly once, though
        // cross-thread interleaving order is scheduler-dependent).
        std::uint64_t draw;
        std::uint64_t expected = state.rng.load(std::memory_order_relaxed);
        do {
            draw = xorshift64(expected);
        } while (!state.rng.compare_exchange_weak(expected, draw,
                                                  std::memory_order_relaxed));
        if (draw >= threshold)
            return false;
    }
    const std::uint64_t fired =
        state.injected.fetch_add(1, std::memory_order_relaxed) + 1;
    auto *counter = static_cast<telemetry::Counter *>(state.counter);
    if (counter != nullptr && telemetry::enabled())
        counter->inc();
    // Every injection is flight-recorded (and triggers a rate-limited
    // dump): a chaos run's dumps show what the pipeline did around each
    // fault, which the audit counters alone cannot reconstruct.
    telemetry::flight::record(telemetry::flight::Subsystem::Fault,
                              telemetry::flight::Code::FaultInjected, 0,
                              -1, static_cast<std::uint64_t>(index),
                              fired);
    telemetry::flight::requestDump("fault injected");
    return true;
}

std::uint64_t
FaultPlan::injected(Site site) const
{
    const int index = siteIndex(site);
    if (index < 0 || index >= kNumSites)
        return 0;
    return _sites[index].injected.load(std::memory_order_relaxed);
}

std::uint64_t
FaultPlan::eligible(Site site) const
{
    const int index = siteIndex(site);
    if (index < 0 || index >= kNumSites)
        return 0;
    return _sites[index].eligible.load(std::memory_order_relaxed);
}

void
FaultPlan::addCounts(Site site, std::uint64_t injected,
                     std::uint64_t eligible)
{
    const int index = siteIndex(site);
    if (index < 0 || index >= kNumSites)
        return;
    _sites[index].injected.fetch_add(injected, std::memory_order_relaxed);
    _sites[index].eligible.fetch_add(eligible, std::memory_order_relaxed);
}

std::uint64_t
FaultPlan::randomBits()
{
    std::uint64_t draw;
    std::uint64_t expected = _shared_rng.load(std::memory_order_relaxed);
    do {
        draw = xorshift64(expected);
    } while (!_shared_rng.compare_exchange_weak(expected, draw,
                                                std::memory_order_relaxed));
    return draw;
}

Status
FaultPlan::configure(const std::string &spec)
{
    reset();
    if (spec.empty())
        return Status::ok();

    std::vector<std::string> entries;
    std::string token;
    std::istringstream stream(spec);
    while (std::getline(stream, token, ','))
        entries.push_back(token);

    for (const std::string &entry : entries) {
        if (entry.empty())
            continue;
        if (entry.rfind("seed=", 0) == 0) {
            char *end = nullptr;
            const std::uint64_t seed =
                std::strtoull(entry.c_str() + 5, &end, 0);
            if (end == nullptr || *end != '\0') {
                reset();
                return Status::error(StatusCode::InvalidArgument,
                                     "fault-spec: bad seed in '" + entry +
                                         "'");
            }
            setSeed(seed);
            continue;
        }
        // site:rate[:after_n[:max_fires]]
        std::vector<std::string> fields;
        std::string field;
        std::istringstream parts(entry);
        while (std::getline(parts, field, ':'))
            fields.push_back(field);
        if (fields.size() < 2 || fields.size() > 4) {
            reset();
            return Status::error(StatusCode::InvalidArgument,
                                 "fault-spec: expected site:rate[:after_n"
                                 "[:max_fires]] in '" +
                                     entry + "'");
        }
        Site site;
        if (!siteFromName(fields[0], site)) {
            reset();
            return Status::error(StatusCode::InvalidArgument,
                                 "fault-spec: unknown site '" + fields[0] +
                                     "'");
        }
        char *end = nullptr;
        const double rate = std::strtod(fields[1].c_str(), &end);
        if (end == nullptr || *end != '\0' || rate < 0.0 || rate > 1.0) {
            reset();
            return Status::error(StatusCode::InvalidArgument,
                                 "fault-spec: rate must be in [0,1] in '" +
                                     entry + "'");
        }
        std::uint64_t after_n = 0;
        std::uint64_t max_fires = 0;
        if (fields.size() >= 3) {
            after_n = std::strtoull(fields[2].c_str(), &end, 0);
            if (end == nullptr || *end != '\0') {
                reset();
                return Status::error(StatusCode::InvalidArgument,
                                     "fault-spec: bad after_n in '" + entry +
                                         "'");
            }
        }
        if (fields.size() == 4) {
            max_fires = std::strtoull(fields[3].c_str(), &end, 0);
            if (end == nullptr || *end != '\0') {
                reset();
                return Status::error(StatusCode::InvalidArgument,
                                     "fault-spec: bad max_fires in '" +
                                         entry + "'");
            }
        }
        arm(site, rate, after_n, max_fires);
    }
    return Status::ok();
}

std::string
FaultPlan::describe() const
{
    std::ostringstream out;
    out << "seed=" << _seed.load(std::memory_order_relaxed);
    for (int i = 0; i < kNumSites; ++i) {
        const std::uint64_t threshold =
            _sites[i].threshold.load(std::memory_order_relaxed);
        if (threshold == 0)
            continue;
        const double rate =
            threshold == UINT64_MAX
                ? 1.0
                : static_cast<double>(threshold) / 18446744073709551616.0;
        out << ' ' << kSiteInfo[i].name << ":" << rate;
        const std::uint64_t after =
            _sites[i].after_n.load(std::memory_order_relaxed);
        const std::uint64_t cap =
            _sites[i].max_fires.load(std::memory_order_relaxed);
        if (after != 0 || cap != 0)
            out << ":" << after;
        if (cap != 0)
            out << ":" << cap;
    }
    return out.str();
}

void
corrupt(Message &message)
{
    corruptBytes(&message, sizeof(Message));
}

void
corruptBytes(void *data, std::size_t len)
{
    if (len == 0)
        return;
    const std::uint64_t r = FaultPlan::instance().randomBits();
    auto *bytes = static_cast<unsigned char *>(data);
    const std::size_t byte = (r >> 8) % len;
    bytes[byte] ^= static_cast<unsigned char>(1u << (r & 7));
}

Status
configureFromSpec(const std::string &spec)
{
    return FaultPlan::instance().configure(spec);
}

void
disarmAll()
{
    FaultPlan::instance().reset();
}

void
handleArgs(int &argc, char **argv)
{
    static const std::string kFlag = "--fault-spec=";
    std::string spec;
    int out = 1;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind(kFlag, 0) == 0) {
            spec = arg.substr(kFlag.size());
        } else {
            argv[out++] = argv[i];
        }
    }
    argc = out;
    argv[argc] = nullptr;
    if (spec.empty()) {
        const char *env = std::getenv("HQ_FAULT_SPEC");
        if (env != nullptr)
            spec = env;
    }
    if (spec.empty())
        return;
    const Status status = configureFromSpec(spec);
    if (!status.isOk()) {
        // A chaos run must never silently degrade into a fault-free run.
        std::fprintf(stderr, "faultinject: %s\n",
                     status.toString().c_str());
        std::exit(2);
    }
    std::fprintf(stderr, "faultinject: armed [%s]\n",
                 FaultPlan::instance().describe().c_str());
}

namespace {

std::uint64_t
counterValue(const char *name)
{
    return telemetry::Registry::instance().counter(name).value();
}

// Registry counters are cumulative for the process lifetime, but the
// audit must judge only the current fault run: reset()/configure()
// snapshot every detector counter and emitAuditRecords() compares
// deltas against that baseline.
constexpr const char *kDetectorCounters[] = {
    "verifier.violations", "kernel.epoch_timeouts", "fpga.dropped",
    "ipc.ring_push_fail",  "ipc.xproc_full_waits",  "ipc.send_errors",
    "ipc.send_retries",
};
constexpr std::size_t kNumDetectorCounters =
    sizeof(kDetectorCounters) / sizeof(kDetectorCounters[0]);

std::mutex g_baseline_mutex;
std::uint64_t g_detector_baseline[kNumDetectorCounters] = {};

std::uint64_t
detectorBaseline(const char *name)
{
    std::lock_guard<std::mutex> guard(g_baseline_mutex);
    for (std::size_t i = 0; i < kNumDetectorCounters; ++i) {
        if (std::strcmp(kDetectorCounters[i], name) == 0)
            return g_detector_baseline[i];
    }
    return 0;
}

} // namespace

void
captureDetectorBaselines()
{
    std::lock_guard<std::mutex> guard(g_baseline_mutex);
    for (std::size_t i = 0; i < kNumDetectorCounters; ++i)
        g_detector_baseline[i] = counterValue(kDetectorCounters[i]);
}

int
emitAuditRecords()
{
    // Fault class -> counters that prove the loss was detected or
    // safely denied (the fail-closed matrix in docs/fault_injection.md).
    struct Detector
    {
        Site site;
        const char *counters[4];
    };
    static const Detector kDetectors[] = {
        {Site::RingDrop,
         {"verifier.violations", "kernel.epoch_timeouts", nullptr}},
        {Site::RingDup,
         {"verifier.violations", "kernel.epoch_timeouts", nullptr}},
        {Site::RingCorrupt,
         {"verifier.violations", "kernel.epoch_timeouts", nullptr}},
        {Site::RingStall,
         {"ipc.ring_push_fail", "ipc.xproc_full_waits", "ipc.send_errors",
          nullptr}},
        {Site::TransportError,
         {"ipc.send_retries", "ipc.send_errors", nullptr}},
        {Site::AfuOverflow,
         {"fpga.dropped", "verifier.violations", nullptr}},
        {Site::KernelLostNotify, {"kernel.epoch_timeouts", nullptr}},
        {Site::VerifierCrash,
         {"kernel.epoch_timeouts", "verifier.violations", nullptr}},
        {Site::FrameCorrupt,
         {"verifier.violations", "kernel.epoch_timeouts", nullptr}},
    };

    FaultPlan &plan = FaultPlan::instance();
    int silent = 0;
    for (const Detector &detector : kDetectors) {
        const std::uint64_t injected = plan.injected(detector.site);
        if (injected == 0)
            continue;
        bool caught = false;
        std::string tried;
        for (const char *const *name = detector.counters; *name != nullptr;
             ++name) {
            if (!tried.empty())
                tried += "|";
            tried += *name;
            if (counterValue(*name) > detectorBaseline(*name)) {
                caught = true;
                break;
            }
        }
        if (caught)
            continue;
        ++silent;
        logWarn("faultinject: SILENT ACCEPT: ", injected, " ",
                siteName(detector.site),
                " fault(s) injected but no detector fired (", tried, ")");
        if (telemetry::EventLog::instance().active()) {
            telemetry::EventRecord record;
            record.type = telemetry::EventType::SilentAccept;
            record.arg0 = injected;
            record.reason = std::string(siteName(detector.site)) +
                            ": no detector fired (" + tried + ")";
            telemetry::EventLog::instance().append(record);
        }
    }
    return silent;
}

std::string
exportCrossProcessReport()
{
    FaultPlan &plan = FaultPlan::instance();
    std::string out = "hq-fault-report 1\n";
    for (int i = 0; i < kNumSites; ++i) {
        const Site site = static_cast<Site>(i);
        const std::uint64_t injected = plan.injected(site);
        const std::uint64_t eligible = plan.eligible(site);
        if (injected == 0 && eligible == 0)
            continue;
        out += "inj ";
        out += siteName(site);
        out += ' ';
        out += std::to_string(injected);
        out += ' ';
        out += std::to_string(eligible);
        out += '\n';
    }
    for (std::size_t i = 0; i < kNumDetectorCounters; ++i) {
        const std::uint64_t value = counterValue(kDetectorCounters[i]);
        const std::uint64_t base = detectorBaseline(kDetectorCounters[i]);
        if (value <= base)
            continue;
        out += "det ";
        out += kDetectorCounters[i];
        out += ' ';
        out += std::to_string(value - base);
        out += '\n';
    }
    out += "end\n";
    return out;
}

bool
absorbCrossProcessReport(const std::string &report)
{
    std::istringstream in(report);
    std::string line;
    if (!std::getline(in, line) || line != "hq-fault-report 1")
        return false;
    bool saw_end = false;
    while (std::getline(in, line)) {
        if (line == "end") {
            saw_end = true;
            break;
        }
        std::istringstream fields(line);
        std::string tag, name;
        if (!(fields >> tag >> name))
            return false;
        if (tag == "inj") {
            std::uint64_t injected = 0;
            std::uint64_t eligible = 0;
            Site site;
            if (!(fields >> injected >> eligible) ||
                !siteFromName(name, site))
                return false;
            FaultPlan::instance().addCounts(site, injected, eligible);
        } else if (tag == "det") {
            std::uint64_t delta = 0;
            if (!(fields >> delta))
                return false;
            telemetry::Registry::instance().counter(name).add(delta);
        } else {
            return false;
        }
    }
    return saw_end;
}

} // namespace faultinject
} // namespace hq
