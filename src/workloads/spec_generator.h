/**
 * @file
 * Synthetic benchmark generator: builds a deterministic mini-IR program
 * from a SpecProfile. The program is a main loop whose per-iteration
 * behavior realizes the profile's rates with modular scheduling
 * (an operation with rate r runs every round(1/r) iterations), computes
 * a checksum in memory, and returns it — output correctness is checked
 * by comparing checksums against the Baseline build (§5.1).
 */

#ifndef HQ_WORKLOADS_SPEC_GENERATOR_H
#define HQ_WORKLOADS_SPEC_GENERATOR_H

#include "ir/module.h"
#include "workloads/spec_profiles.h"

namespace hq {

/**
 * Build the benchmark program for a profile.
 *
 * @param profile  behavior description
 * @param scale    multiplier on profile.work_items (harnesses use small
 *                 scales for tests, larger for performance runs)
 */
ir::Module buildSpecModule(const SpecProfile &profile, double scale = 1.0);

} // namespace hq

#endif // HQ_WORKLOADS_SPEC_GENERATOR_H
