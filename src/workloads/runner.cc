#include "workloads/runner.h"

#include <algorithm>

#include "common/log.h"
#include "common/timer.h"
#include "fpga/fpga_channel.h"
#include "ipc/shm_channel.h"
#include "policy/pointer_integrity.h"
#include "runtime/vm.h"
#include "verifier/verifier.h"
#include "workloads/spec_generator.h"

namespace hq {

WorkloadRunner::WorkloadRunner(RunnerOptions options) : _options(options) {}

std::uint64_t
WorkloadRunner::baselineChecksum(const SpecProfile &profile)
{
    auto it = _checksum_cache.find(profile.name);
    if (it != _checksum_cache.end())
        return it->second;

    ir::Module module = buildSpecModule(profile, _options.scale);
    VmConfig config;
    Vm vm(module, config, nullptr);
    const RunResult result = vm.run();
    if (result.exit != ExitKind::Ok)
        panic("uninstrumented benchmark failed: " + profile.name + ": " +
              result.detail);
    _checksum_cache[profile.name] = result.return_value;
    return result.return_value;
}

BenchmarkOutcome
WorkloadRunner::execute(const SpecProfile &profile, CfiDesign design,
                        bool devirtualize_baseline)
{
    const DesignInfo &info = designInfo(design);

    ir::Module module = buildSpecModule(profile, _options.scale);
    if (design != CfiDesign::Baseline || devirtualize_baseline) {
        Status status = instrumentModule(module, design);
        if (!status.isOk())
            panic("instrumentation failed: " + status.toString());
    }

    // Fresh harness per run.
    KernelModule::Config kconfig;
    kconfig.speculation_window = _options.speculation_window;
    kconfig.elide_readonly_syscalls = _options.elide_readonly;
    KernelModule kernel(kconfig);
    auto policy = std::make_shared<PointerIntegrityPolicy>();
    Verifier::Config vconfig;
    vconfig.kill_on_violation = _options.kill_on_violation;
    vconfig.num_shards = _options.num_shards;
    vconfig.health_enabled = _options.health_enabled;
    vconfig.proactive_acks = _options.proactive_acks;
    if (_options.health_enabled)
        vconfig.health.interval = std::chrono::milliseconds(50);
    Verifier verifier(kernel, policy, vconfig);

    std::unique_ptr<Channel> channel;
    HqRuntime *runtime_ptr = nullptr;
    std::unique_ptr<HqRuntime> runtime;
    if (info.hq_messages) {
        if (_options.channel == ChannelKind::Fpga) {
            FpgaConfig fpga_config;
            fpga_config.host_buffer_messages = _options.channel_capacity;
            fpga_config.mmio_write_ns = _options.fpga_mmio_ns;
            auto fpga = std::make_unique<FpgaChannel>(fpga_config);
            fpga->afu().setPidRegister(1);
            verifier.attachChannel(fpga.get(), 1,
                                   /*device_stamped=*/true);
            channel = std::move(fpga);
        } else {
            channel =
                makeChannel(_options.channel, _options.channel_capacity);
            verifier.attachChannel(channel.get(), 1);
        }
        runtime = std::make_unique<HqRuntime>(1, *channel, kernel);
        Status status = runtime->enable();
        if (!status.isOk())
            panic("runtime enable failed: " + status.toString());
        runtime_ptr = runtime.get();
        verifier.start();
    }

    VmConfig config = makeVmConfig(design);
    config.stop_on_inline_violation = false; // continue mode (§5)
    Vm vm(module, config, runtime_ptr);

    Timer timer;
    const RunResult result = vm.run();
    const double seconds = timer.elapsedSeconds();

    if (info.hq_messages)
        verifier.stop();

    BenchmarkOutcome outcome;
    outcome.benchmark = profile.name;
    outcome.design = info.name;
    outcome.exit = result.exit;
    outcome.seconds = seconds;
    outcome.instructions = result.instructions;
    outcome.checksum = result.return_value;
    const KernelProcessStats kstats = kernel.statsFor(1);
    outcome.syscalls = kstats.syscalls;
    outcome.syscall_waits = kstats.waits;
    outcome.spec_syscalls = kstats.spec_syscalls;
    outcome.pre_arm_hits = kstats.pre_arm_hits;
    outcome.max_spec_depth = kstats.max_spec_depth;
    if (runtime_ptr) {
        outcome.messages_sent = runtime_ptr->messagesSent();
        const VerifierProcessStats vstats = verifier.statsFor(1);
        outcome.verifier_messages = vstats.messages;
        outcome.verifier_max_entries = vstats.max_entries;
    }

    // --- Classification (Table 4 taxonomy) ----------------------------
    const bool completed = result.exit == ExitKind::Ok;
    outcome.error = !completed;

    const bool verifier_violation =
        info.hq_messages && verifier.hasViolation(1);
    outcome.genuine_violation = verifier_violation &&
                                profile.static_init_uaf;
    outcome.false_positive =
        (result.inline_violations > 0) ||
        (verifier_violation && !outcome.genuine_violation);

    if (completed) {
        const std::uint64_t expected = baselineChecksum(profile);
        outcome.invalid = result.return_value != expected;
    } else if (result.exit == ExitKind::Crash) {
        // A mid-run crash leaves truncated/incorrect output; the
        // paper's categories overlap the same way (its CPI row has 14
        // errors and 14 invalid results).
        outcome.invalid = true;
    }

    // Modeled (non-mechanical) outcomes; see spec_profiles.h.
    if (_options.apply_modeled_outcomes) {
        // The two old-LLVM shared bugs manifest on the version-specific
        // baselines (the designs' own failures are already counted).
        if (profile.old_llvm_baseline_bug &&
            design == CfiDesign::Baseline && !devirtualize_baseline) {
            outcome.error = true;
            outcome.invalid = true;
        }
        if (design == CfiDesign::Ccfi) {
            if (profile.ccfi_abi_break)
                outcome.error = true;
            if (profile.ccfi_x87_sensitive)
                outcome.invalid = true;
        }
    }

    outcome.ok = !outcome.error && !outcome.false_positive &&
                 !outcome.invalid;
    return outcome;
}

BenchmarkOutcome
WorkloadRunner::run(const SpecProfile &profile, CfiDesign design)
{
    return execute(profile, design, /*devirtualize_baseline=*/true);
}

BenchmarkOutcome
WorkloadRunner::runOldBaseline(const SpecProfile &profile)
{
    BenchmarkOutcome outcome =
        execute(profile, CfiDesign::Baseline,
                /*devirtualize_baseline=*/false);
    outcome.design = "Baseline-old-LLVM";
    return outcome;
}

double
WorkloadRunner::relativePerformance(const SpecProfile &profile,
                                    CfiDesign design)
{
    // Each design is normalized against a version-specific baseline:
    // CCFI (LLVM 3.4) and CPI (LLVM 3.3) predate the devirtualization
    // optimizations, so their baseline excludes them (§5).
    const bool modern = designInfo(design).devirtualize;
    double base_seconds = 0.0;
    double design_seconds = 0.0;
    // Min-of-N timing: interleave baseline and instrumented runs so
    // machine noise affects both sides equally.
    for (int rep = 0; rep < std::max(1, _options.perf_reps); ++rep) {
        const BenchmarkOutcome baseline =
            execute(profile, CfiDesign::Baseline, modern);
        const BenchmarkOutcome instrumented =
            execute(profile, design, true);
        if (rep == 0 || baseline.seconds < base_seconds)
            base_seconds = baseline.seconds;
        if (rep == 0 || instrumented.seconds < design_seconds)
            design_seconds = instrumented.seconds;
    }
    if (design_seconds <= 0.0 || base_seconds <= 0.0)
        return 1.0;
    return base_seconds / design_seconds;
}

} // namespace hq
