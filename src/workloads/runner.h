/**
 * @file
 * Benchmark runner: builds a profile's program, instruments it for a
 * CFI design, executes it against a live kernel/verifier harness, and
 * classifies the outcome with the paper's Table 4 taxonomy (errors,
 * false positives, invalid output, OK) plus timing and message metrics
 * for the performance figures.
 */

#ifndef HQ_WORKLOADS_RUNNER_H
#define HQ_WORKLOADS_RUNNER_H

#include <map>
#include <string>

#include "cfi/design.h"
#include "ipc/channel.h"
#include "workloads/spec_profiles.h"

namespace hq {

/** Classified result of one (benchmark, design) execution. */
struct BenchmarkOutcome
{
    std::string benchmark;
    std::string design;
    ExitKind exit = ExitKind::Ok;

    bool error = false;      //!< crash, hang, kill, or modeled ABI break
    bool false_positive = false; //!< violation flagged on benign behavior
    bool genuine_violation = false; //!< real bug found (omnetpp UAF)
    bool invalid = false;    //!< completed with wrong output
    bool ok = false;         //!< completed, correct, no false positives

    double seconds = 0.0;
    std::uint64_t instructions = 0;
    std::uint64_t messages_sent = 0;
    std::uint64_t verifier_messages = 0;
    std::uint64_t verifier_max_entries = 0;
    std::uint64_t syscalls = 0;
    std::uint64_t syscall_waits = 0;   //!< syscalls that had to block
    std::uint64_t spec_syscalls = 0;   //!< retired ahead of their ack
    std::uint64_t pre_arm_hits = 0;    //!< proactive fast-path passes
    std::uint64_t max_spec_depth = 0;  //!< peak speculation depth
    std::uint64_t checksum = 0;
};

/** Execution options shared across a harness sweep. */
struct RunnerOptions
{
    /** AppendWrite transport for HQ designs (Figure 3 variants). */
    ChannelKind channel = ChannelKind::UarchModel;
    /** Workload scale factor (fraction of profile.work_items). */
    double scale = 0.05;
    /** Kill on violation (effectiveness) vs continue (correctness). */
    bool kill_on_violation = false;
    /**
     * Apply the documented modeled outcomes (CCFI ABI break / x87
     * precision, old-LLVM baseline bugs) that cannot arise mechanically
     * in a portable VM. Disable to see only mechanical results.
     */
    bool apply_modeled_outcomes = true;
    /** FPGA MMIO posted-write latency model (ns per write). */
    std::uint32_t fpga_mmio_ns = 51;
    /** Channel capacity in messages. */
    std::size_t channel_capacity = 1 << 14;
    /** Timing repetitions for relativePerformance (min-of-N). */
    int perf_reps = 3;
    /** Verifier shard count (1 = serial; 0 = auto-detect). */
    std::size_t num_shards = 1;
    /** Run the shard health watchdog during HQ runs (observability
     *  demos; off for benches so timing is undisturbed). */
    bool health_enabled = false;
    /** Kernel gate speculation window (0 = strict; clamped by the
     *  kernel to KernelModule::kMaxSpeculationWindow). */
    std::size_t speculation_window = 0;
    /** Verifier pre-arms the gate after each full channel drain. */
    bool proactive_acks = false;
    /** Elide the gate for read-only syscalls (§5.3.3 improvement). */
    bool elide_readonly = false;
};

class WorkloadRunner
{
  public:
    explicit WorkloadRunner(RunnerOptions options = RunnerOptions());

    /** Run one benchmark under one design and classify the outcome. */
    BenchmarkOutcome run(const SpecProfile &profile, CfiDesign design);

    /**
     * Baseline run without the modern devirtualization optimizations —
     * the version-specific baseline CCFI (LLVM 3.4) and CPI (LLVM 3.3)
     * are normalized against in §5 ("Baseline-CCFI"/"Baseline-CPI").
     */
    BenchmarkOutcome runOldBaseline(const SpecProfile &profile);

    /**
     * Relative performance of a design on a benchmark: baseline time /
     * design time (1.0 = no overhead). Uses the version-matched
     * baseline (devirtualization disabled for CCFI/CPI, as in §5).
     */
    double relativePerformance(const SpecProfile &profile,
                               CfiDesign design);

    const RunnerOptions &options() const { return _options; }

  private:
    /** Reference checksum from an uninstrumented run (cached). */
    std::uint64_t baselineChecksum(const SpecProfile &profile);

    /** Timed run; returns the outcome without classification. */
    BenchmarkOutcome execute(const SpecProfile &profile, CfiDesign design,
                             bool devirtualize_baseline);

    RunnerOptions _options;
    std::map<std::string, std::uint64_t> _checksum_cache;
};

} // namespace hq

#endif // HQ_WORKLOADS_RUNNER_H
