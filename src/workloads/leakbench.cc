#include "workloads/leakbench.h"

#include "cfi/design.h"
#include "common/log.h"
#include "compiler/ifc_passes.h"
#include "ipc/shm_channel.h"
#include "ir/builder.h"
#include "policy/ifc.h"
#include "policy/pointer_integrity.h"
#include "policy/policy_module.h"
#include "runtime/vm.h"
#include "verifier/verifier.h"

namespace hq {

using namespace ir;

namespace {

constexpr std::uint64_t kConfirmMagic = 0x5AFE5AFE5AFE5AFEULL;
constexpr std::uint64_t kSecretValue = 0x5EC12E75EC12E7ULL;
constexpr std::uint64_t kTaintedValue = 0x7A17BADBADC0DEULL;

/**
 * Explicit runtime source annotation (hq_label(p, LABEL)): a LABEL-DEF
 * carrying a runtime address, for heap/stack secrets the ir::Global
 * annotations cannot describe. Label 0 is the declassify form.
 */
void
emitLabelDef(IrBuilder &builder, int addr_reg, std::uint64_t label_value)
{
    Instr instr;
    instr.op = IrOp::LabelDefMsg;
    instr.a = addr_reg;
    instr.imm = label_value;
    builder.emit(instr);
}

/** Builds the victim program for one scenario. */
class LeakBuilder
{
  public:
    explicit LeakBuilder(LeakScenario scenario)
        : _scenario(scenario), _builder(_module)
    {
        _module.name =
            std::string("leakbench.") + leakScenarioName(scenario);
    }

    ir::Module build();

    int confirmedGlobal() const { return _confirmed; }

  private:
    /** Sink global: stores into it must not carry `forbid` bits. */
    int
    addSink(const char *sink_name, std::uint64_t forbid)
    {
        Global sink;
        sink.name = sink_name;
        sink.size = 8;
        sink.section = Section::Data;
        sink.ifc_sink_forbid = forbid;
        return _builder.addGlobal(std::move(sink));
    }

    /** Source global carrying a (possibly partial) label annotation. */
    int
    addLabeledGlobal(const char *g_name, std::uint64_t size,
                     std::uint64_t label_bits, std::uint64_t offset = 0,
                     std::uint64_t label_size = 0)
    {
        Global global;
        global.name = g_name;
        global.size = size;
        global.section = Section::Data;
        global.ifc_label = label_bits;
        global.ifc_label_offset = offset;
        global.ifc_label_size = label_size;
        global.word_init.emplace_back(offset, kSecretValue);
        return _builder.addGlobal(std::move(global));
    }

    void emitBody(int sink);

    const LeakScenario _scenario;
    ir::Module _module;
    IrBuilder _builder;
    int _confirmed = -1;
};

void
LeakBuilder::emitBody(int sink)
{
    IrBuilder &b = _builder;
    const int sink_addr = b.globalAddr(sink);

    switch (_scenario) {
      case LeakScenario::HeapOobIndex: {
        // A public heap array and, allocated right after it, a secret
        // heap block (a session key). The "attacker" supplies an index
        // one past the array; nobody bounds-checks it.
        const int pub = b.mallocOp(b.constInt(16));
        const int sec = b.mallocOp(b.constInt(8)); // contiguous
        emitLabelDef(b, sec, label::kSecret);
        b.store(sec, b.constInt(kSecretValue), TypeRef::intTy());
        const int oob = b.arith(ArithKind::Add, pub, b.constInt(16));
        const int v = b.load(oob, TypeRef::intTy());
        b.store(sink_addr, v, TypeRef::intTy());
        break;
      }

      case LeakScenario::StackOobIndex: {
        // Same bug on the stack: the secret local sits just above the
        // indexed buffer in the frame.
        const int buf = b.allocaOp(32);
        const int sec = b.allocaOp(8); // adjacent, at buf+32
        emitLabelDef(b, sec, label::kSecret);
        b.store(sec, b.constInt(kSecretValue), TypeRef::intTy());
        const int oob = b.arith(ArithKind::Add, buf, b.constInt(32));
        const int v = b.load(oob, TypeRef::intTy());
        b.store(sink_addr, v, TypeRef::intTy());
        break;
      }

      case LeakScenario::FormatLeak: {
        // Format-string-style walk: an attacker-chosen width makes the
        // output loop stride past the message buffer into the secret
        // global declared after it, echoing every word to the sink.
        Global fmt;
        fmt.name = "fmt_buf";
        fmt.size = 16;
        fmt.section = Section::Data;
        const int fmt_id = _builder.addGlobal(std::move(fmt));
        const int sec_id =
            addLabeledGlobal("fmt_secret", 8, label::kSecret);
        (void)sec_id; // adjacent to fmt_buf; the sweep reaches it

        const int start = b.globalAddr(fmt_id);
        const int i_slot = b.allocaOp(8);
        b.store(i_slot, start, TypeRef::dataPtr());
        const int limit =
            b.arith(ArithKind::Add, start, b.constInt(24)); // 3 words
        const int bb_head = b.newBlock();
        const int bb_body = b.newBlock();
        const int bb_done = b.newBlock();
        b.br(bb_head);
        b.setBlock(bb_head);
        const int cursor = b.load(i_slot, TypeRef::dataPtr());
        const int more = b.arith(ArithKind::Lt, cursor, limit);
        b.condBr(more, bb_body, bb_done);
        b.setBlock(bb_body);
        const int c2 = b.load(i_slot, TypeRef::dataPtr());
        const int word = b.load(c2, TypeRef::intTy());
        b.store(sink_addr, word, TypeRef::intTy()); // echo to output
        const int next = b.arith(ArithKind::Add, c2, b.constInt(8));
        b.store(i_slot, next, TypeRef::dataPtr());
        b.br(bb_head);
        b.setBlock(bb_done);
        break;
      }

      case LeakScenario::TaintedSyscallArg: {
        // Unsanitized network input copied straight into the staging
        // slot a syscall argument is marshalled from.
        Global input;
        input.name = "net_input";
        input.size = 8;
        input.section = Section::Data;
        input.ifc_label = label::kTainted;
        input.word_init.emplace_back(0, kTaintedValue);
        const int input_id = _builder.addGlobal(std::move(input));
        const int v =
            b.load(b.globalAddr(input_id), TypeRef::intTy());
        b.store(sink_addr, v, TypeRef::intTy());
        break;
      }

      case LeakScenario::CopyLaunder: {
        // One intermediate copy: the classic "it's just a temp" lie.
        const int sec_id =
            addLabeledGlobal("copy_secret", 8, label::kSecret);
        const int tmp = b.allocaOp(8);
        const int v =
            b.load(b.globalAddr(sec_id), TypeRef::intTy());
        b.store(tmp, v, TypeRef::intTy());
        const int w = b.load(tmp, TypeRef::intTy());
        b.store(sink_addr, w, TypeRef::intTy());
        break;
      }

      case LeakScenario::DoubleCopyLaunder: {
        // Two hops; the join chain must survive both.
        const int sec_id =
            addLabeledGlobal("copy2_secret", 8, label::kSecret);
        const int tmp1 = b.allocaOp(8);
        const int tmp2 = b.allocaOp(8);
        const int v =
            b.load(b.globalAddr(sec_id), TypeRef::intTy());
        b.store(tmp1, v, TypeRef::intTy());
        const int w = b.load(tmp1, TypeRef::intTy());
        b.store(tmp2, w, TypeRef::intTy());
        const int x = b.load(tmp2, TypeRef::intTy());
        b.store(sink_addr, x, TypeRef::intTy());
        break;
      }

      case LeakScenario::ArithLaunder: {
        // XOR-"encrypting" the secret does not launder its label:
        // provenance rides through arithmetic.
        const int sec_id =
            addLabeledGlobal("xor_secret", 8, label::kSecret);
        const int v =
            b.load(b.globalAddr(sec_id), TypeRef::intTy());
        const int x =
            b.arith(ArithKind::Xor, v, b.constInt(0xA5A5A5A5A5A5A5A5ULL));
        b.store(sink_addr, x, TypeRef::intTy());
        break;
      }

      case LeakScenario::DoubleFetch: {
        // TOCTOU on shared memory: the victim snapshots the shared
        // word, validates and declassifies the *snapshot*, then — the
        // bug — re-fetches from the shared location for the actual use.
        const int shared_id =
            addLabeledGlobal("shared_box", 8, label::kSecret);
        const int shared = b.globalAddr(shared_id);
        const int snap = b.allocaOp(8);
        const int v1 = b.load(shared, TypeRef::intTy());
        b.store(snap, v1, TypeRef::intTy());
        // Validation passed: the snapshot is declassified.
        emitLabelDef(b, snap, label::kPublic);
        // Second fetch: the shared word (still SECRET, and possibly
        // swapped since validation) is what actually flows out.
        const int v2 = b.load(shared, TypeRef::intTy());
        b.store(sink_addr, v2, TypeRef::intTy());
        break;
      }

      case LeakScenario::StructOverread: {
        // A record whose first word is public and second is secret
        // (ifc_label_offset/size carve out just the secret field). The
        // serializer copies the whole struct instead of the prefix.
        const int rec_id = addLabeledGlobal("record", 16, label::kSecret,
                                            /*offset=*/8,
                                            /*label_size=*/8);
        const int rec = b.globalAddr(rec_id);
        const int v0 = b.load(rec, TypeRef::intTy());
        b.store(sink_addr, v0, TypeRef::intTy()); // public word: fine
        const int hi = b.arith(ArithKind::Add, rec, b.constInt(8));
        const int v1 = b.load(hi, TypeRef::intTy());
        b.store(sink_addr, v1, TypeRef::intTy()); // secret word: deny
        break;
      }

      case LeakScenario::PtrRedirectRead: {
        // The attacker corrupts a *data* pointer (CFI does not protect
        // those) so a benign-looking read pulls from the secret.
        Global pub;
        pub.name = "pub_data";
        pub.size = 8;
        pub.section = Section::Data;
        const int pub_id = _builder.addGlobal(std::move(pub));
        const int sec_id =
            addLabeledGlobal("redirect_secret", 8, label::kSecret);
        const int ptr_slot = b.allocaOp(8);
        b.store(ptr_slot, b.globalAddr(pub_id), TypeRef::dataPtr());
        // The corruption: redirect the pointer at the secret.
        b.store(ptr_slot, b.globalAddr(sec_id), TypeRef::dataPtr());
        const int p = b.load(ptr_slot, TypeRef::dataPtr());
        const int v = b.load(p, TypeRef::intTy());
        b.store(sink_addr, v, TypeRef::intTy());
        break;
      }
    }
}

ir::Module
LeakBuilder::build()
{
    Global confirmed;
    confirmed.name = "exfil_confirmed";
    confirmed.size = 8;
    confirmed.section = Section::Data;
    _confirmed = _builder.addGlobal(std::move(confirmed));

    // Syscall-argument sinks forbid taint; everything else forbids
    // SECRET (an output channel the secret must never reach).
    const std::uint64_t forbid =
        _scenario == LeakScenario::TaintedSyscallArg ? label::kTainted
                                                     : label::kSecret;
    const char *sink_name = _scenario == LeakScenario::TaintedSyscallArg
                                ? "syscall_arg"
                                : "public_out";
    const int sink = addSink(sink_name, forbid);

    _builder.beginFunction("main");
    emitBody(sink);
    // The exfiltration already happened; confirm it the RIPE way — a
    // gated system call followed by the success marker, so a detected
    // violation (kill mode) provably blocks confirmation.
    _builder.syscall(59); // execve-like
    const int addr = _builder.globalAddr(_confirmed);
    _builder.store(addr, _builder.constInt(kConfirmMagic),
                   TypeRef::intTy());
    _builder.ret(_builder.constInt(0));
    _builder.endFunction();
    _module.entry_function =
        static_cast<int>(_module.functions.size()) - 1;
    return std::move(_module);
}

} // namespace

const char *
leakScenarioName(LeakScenario scenario)
{
    switch (scenario) {
      case LeakScenario::HeapOobIndex: return "heap-oob-index";
      case LeakScenario::StackOobIndex: return "stack-oob-index";
      case LeakScenario::FormatLeak: return "format-leak";
      case LeakScenario::TaintedSyscallArg: return "tainted-syscall-arg";
      case LeakScenario::CopyLaunder: return "copy-launder";
      case LeakScenario::DoubleCopyLaunder: return "double-copy-launder";
      case LeakScenario::ArithLaunder: return "arith-launder";
      case LeakScenario::DoubleFetch: return "double-fetch";
      case LeakScenario::StructOverread: return "struct-overread";
      case LeakScenario::PtrRedirectRead: return "ptr-redirect-read";
    }
    return "?";
}

std::vector<LeakScenario>
leakScenarioSuite()
{
    return {
        LeakScenario::HeapOobIndex,      LeakScenario::StackOobIndex,
        LeakScenario::FormatLeak,        LeakScenario::TaintedSyscallArg,
        LeakScenario::CopyLaunder,       LeakScenario::DoubleCopyLaunder,
        LeakScenario::ArithLaunder,      LeakScenario::DoubleFetch,
        LeakScenario::StructOverread,    LeakScenario::PtrRedirectRead,
    };
}

const char *
policySuiteName(PolicySuite suite)
{
    switch (suite) {
      case PolicySuite::CfiOnly: return "cfi-only";
      case PolicySuite::CfiPlusIfc: return "cfi+ifc";
    }
    return "?";
}

ir::Module
buildLeakModule(LeakScenario scenario)
{
    LeakBuilder builder(scenario);
    return builder.build();
}

LeakResult
runLeakAttack(LeakScenario scenario, PolicySuite suite,
              std::size_t num_shards, WireFormat format, bool var_records)
{
    LeakBuilder builder(scenario);
    ir::Module module = builder.build();

    // The instrumentation is identical for both policy suites: full HQ
    // CFI pipeline plus IFC lowering. Only verifier enforcement varies.
    Status status = instrumentModule(module, CfiDesign::HqSfeStk);
    if (!status.isOk())
        panic("leakbench CFI instrumentation failed: " +
              status.toString());
    PassManager ifc_pm;
    ifc_pm.add(std::make_unique<IfcLoweringPass>());
    status = ifc_pm.run(module);
    if (!status.isOk())
        panic("leakbench IFC lowering failed: " + status.toString());

    KernelModule::Config kconfig;
    kconfig.epoch = std::chrono::milliseconds(200);
    KernelModule kernel(kconfig);

    std::shared_ptr<Policy> policy;
    if (suite == PolicySuite::CfiOnly) {
        policy = std::make_shared<PointerIntegrityPolicy>();
    } else {
        auto multi = std::make_shared<MultiPolicy>();
        multi->addPolicy(std::make_unique<PointerIntegrityPolicy>());
        multi->addPolicy(std::make_unique<IfcPolicy>());
        policy = multi;
    }

    Verifier::Config vconfig;
    vconfig.kill_on_violation = true; // effectiveness mode
    vconfig.num_shards = num_shards;  // verdicts must not depend on this
    Verifier verifier(kernel, policy, vconfig);

    ShmChannel channel(1 << 12);
    if (format != WireFormat::V1 && !channel.negotiateFormat(format))
        panic("leakbench channel refused wire format negotiation");
    if (var_records && !channel.enableVarRecords())
        panic("leakbench channel refused variable records");
    verifier.attachChannel(&channel, 1);
    HqRuntime runtime(1, channel, kernel);
    if (!runtime.enable().isOk())
        panic("leakbench runtime enable failed");
    verifier.start();

    VmConfig config = makeVmConfig(CfiDesign::HqSfeStk);
    config.stop_on_inline_violation = true;
    config.max_instructions = 64ULL << 20;
    Vm vm(module, config, &runtime);

    const RunResult result = vm.run();
    verifier.stop();

    LeakResult out;
    out.detail = result.detail;
    std::uint64_t confirmed = 0;
    vm.memory().read64(vm.globalAddr(builder.confirmedGlobal()),
                       confirmed);
    out.leaked = confirmed == kConfirmMagic;
    out.detected = verifier.hasViolation(1);
    if (suite == PolicySuite::CfiPlusIfc) {
        auto *multi_ctx =
            static_cast<MultiPolicyContext *>(verifier.contextFor(1));
        if (multi_ctx != nullptr) {
            auto *ifc_ctx = static_cast<IfcContext *>(
                multi_ctx->contextFor("ifc"));
            if (ifc_ctx != nullptr)
                out.ifc_violations = ifc_ctx->violationCount();
        }
    }
    return out;
}

} // namespace hq
