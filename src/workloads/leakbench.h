/**
 * @file
 * LeakBench: a RIPE-style corpus of *data-only* attacks.
 *
 * Every scenario is a small program whose control flow stays entirely
 * valid — no code pointer is ever corrupted — while secret or tainted
 * bytes are moved into a public sink through a memory-safety or logic
 * bug. That makes the corpus the IFC counterpart of the RIPE suite: a
 * CFI-only verifier must ACCEPT every run (the attack "succeeds", its
 * confirmation system call completes), and a CFI+IFC verifier must DENY
 * it (the LABEL-CHECK violation blocks the confirmation syscall even
 * though validation is asynchronous — the same bounded-speculation
 * mechanism the RIPE harness exercises).
 *
 * Sources are modeled as ir::Global ifc_label annotations (lowered by
 * IfcLoweringPass) or explicit runtime LABEL-DEF instructions for
 * heap/stack secrets (an `hq_label(p, SECRET)` annotation API); sinks
 * are ifc_sink_forbid annotations. Verdicts must be identical across
 * verifier shard counts and wire formats — the parity tests sweep
 * {1,4} shards x {v1,v2} exactly like the RIPE shard/format parity
 * gates.
 */

#ifndef HQ_WORKLOADS_LEAKBENCH_H
#define HQ_WORKLOADS_LEAKBENCH_H

#include <string>
#include <vector>

#include "ipc/frame.h"
#include "ir/module.h"

namespace hq {

/** The data-only attack corpus. */
enum class LeakScenario {
    HeapOobIndex,      //!< unchecked index reads an adjacent heap secret
    StackOobIndex,     //!< unchecked index reads an adjacent stack secret
    FormatLeak,        //!< %s-style walk over memory containing a secret
    TaintedSyscallArg, //!< unsanitized input reaches a syscall-arg sink
    CopyLaunder,       //!< secret -> temp -> sink copy chain
    DoubleCopyLaunder, //!< secret laundered through two temporaries
    ArithLaunder,      //!< secret XOR-"encrypted" before reaching the sink
    DoubleFetch,       //!< validated snapshot, then a second raw fetch
    StructOverread,    //!< copy overruns a public prefix into a secret field
    PtrRedirectRead,   //!< corrupted data pointer redirects a benign read
};

const char *leakScenarioName(LeakScenario scenario);

/** Every scenario, in enum order. */
std::vector<LeakScenario> leakScenarioSuite();

/** Which policy families the verifier enforces. */
enum class PolicySuite {
    CfiOnly,    //!< pointer-integrity only: blind to data-only leaks
    CfiPlusIfc, //!< pointer integrity + IFC labels on one stream
};

const char *policySuiteName(PolicySuite suite);

/** Build the (uninstrumented) victim program for one scenario. */
ir::Module buildLeakModule(LeakScenario scenario);

struct LeakResult
{
    bool leaked = false;   //!< confirmation store landed (attack success)
    bool detected = false; //!< the verifier flagged a violation
    std::uint64_t ifc_violations = 0; //!< LABEL-CHECK failures recorded
    std::string detail;
};

/**
 * Execute one scenario under one policy suite. The victim is always
 * instrumented identically (HQ CFI pipeline + IfcLoweringPass): the
 * policy suite decides only what the verifier enforces, so the
 * CFI-alone=accept / CFI+IFC=deny contrast isolates the policy, not
 * the instrumentation.
 *
 * @param num_shards verifier shard count; verdicts must not depend on it
 * @param format wire format; verdicts must be identical for v1 and v2
 * @param var_records opt the channel into v2 variable-length records
 *        (requires format == V2); verdicts must again be identical
 */
LeakResult runLeakAttack(LeakScenario scenario, PolicySuite suite,
                         std::size_t num_shards = 1,
                         WireFormat format = WireFormat::V1,
                         bool var_records = false);

} // namespace hq

#endif // HQ_WORKLOADS_LEAKBENCH_H
