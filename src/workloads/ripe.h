/**
 * @file
 * RIPE64-style exploit suite (paper §5.2, Table 5).
 *
 * Each attack is a small program containing a memory-safety bug that an
 * "attacker" exercises to corrupt a control-flow pointer, then a benign
 * use of that pointer. The attack succeeds only when control reaches
 * the payload AND the payload's confirmation system call completes —
 * mirroring RIPE, which verifies exploits with system calls in
 * shellcode, and exercising HerQules' bounded asynchronous validation
 * (a detected violation blocks the confirmation syscall even though
 * checking is asynchronous).
 *
 * The matrix spans RIPE's axes:
 *  - overflow origin: BSS / Data / Heap / Stack (Table 5 columns)
 *  - target: function pointer, struct function pointer, longjmp buffer,
 *    vtable pointer, return pointer
 *  - technique: direct linear overwrite, indirect pointer redirect
 *    (write-what-where), disclosure-assisted write or sweep to the
 *    (safe-)stack return pointer
 *  - payload: fresh shellcode-like function (type-incompatible) or an
 *    existing libc-like function (type-compatible code reuse,
 *    return-to-libc)
 *
 * Several variants of each coherent combination are generated (RIPE
 * varies shellcode and target functions similarly).
 */

#ifndef HQ_WORKLOADS_RIPE_H
#define HQ_WORKLOADS_RIPE_H

#include <string>
#include <vector>

#include "cfi/design.h"
#include "ipc/frame.h"
#include "ir/module.h"

namespace hq {

enum class AttackOrigin { Bss, Data, Heap, Stack };
enum class AttackTarget {
    FuncPtr,       //!< plain function pointer variable
    StructFuncPtr, //!< function pointer inside a struct
    LongjmpBuf,    //!< the code pointer inside a jmp_buf
    VtablePtr,     //!< C++ object vtable pointer (fake vtable)
    VtableReuse,   //!< vtable pointer swapped to another real vtable
    RetPtr,        //!< return pointer (regular or safe stack)
};
enum class AttackTechnique {
    DirectOverflow,  //!< linear sweep from the origin buffer
    IndirectRedirect,//!< corrupt a data pointer, then write-what-where
    DisclosureWrite, //!< write to the disclosed return-pointer address
    DisclosureSweep, //!< linear sweep up to the disclosed address
};
enum class AttackPayload {
    Shellcode, //!< fresh attacker function (type-incompatible)
    Libc,      //!< existing same-signature function (code reuse)
};

const char *attackOriginName(AttackOrigin origin);
const char *attackTargetName(AttackTarget target);
const char *attackTechniqueName(AttackTechnique technique);

struct RipeAttack
{
    AttackOrigin origin;
    AttackTarget target;
    AttackTechnique technique;
    AttackPayload payload;
    int variant = 0;

    std::string name() const;
};

/**
 * The full attack matrix: every coherent (origin, target, technique,
 * payload) combination, times `variants_per_group` variants.
 */
std::vector<RipeAttack> ripeAttackSuite(int variants_per_group = 18);

/** Build the attack program. */
ir::Module buildRipeModule(const RipeAttack &attack);

struct RipeResult
{
    bool succeeded = false; //!< payload confirmed via completed syscall
    bool detected = false;  //!< some design check flagged the attack
    ExitKind exit = ExitKind::Ok;
    std::string detail;
};

/**
 * Execute one attack under one design (effectiveness mode: kill).
 * @param num_shards verifier shard count; policy verdicts must be
 *        identical for any value (shard-parity tests exercise 1 vs 4).
 * @param format wire format negotiated on the message channel; verdicts
 *        must be identical for v1 and v2 (wire-parity tests).
 * @param speculation_window kernel gate speculation window; verdicts
 *        must be identical at strict (0) and any K: the confirmation
 *        syscall (execve-like) is a speculation barrier, so a detected
 *        violation always blocks it (gating-parity tests sweep 0 vs 4).
 */
RipeResult runRipeAttack(const RipeAttack &attack, CfiDesign design,
                         std::size_t num_shards = 1,
                         WireFormat format = WireFormat::V1,
                         std::size_t speculation_window = 0);

} // namespace hq

#endif // HQ_WORKLOADS_RIPE_H
