#include "workloads/spec_generator.h"

#include <algorithm>
#include <cmath>

#include "ir/builder.h"

namespace hq {

using namespace ir;

namespace {

/// Signature classes used by generated programs.
constexpr int kSigHandler = 0;
constexpr int kSigA = 1; //!< definition class of the cast-trait pointer
constexpr int kSigB = 2; //!< call class of the cast-trait pointer

constexpr int kNumHandlers = 4; //!< power of two for cheap masking

/** Period (power of two) realizing a rate: op fires every k-th iter. */
std::uint64_t
periodFor(double rate)
{
    if (rate <= 0.0)
        return 0; // never
    const double period = std::max(1.0, 1.0 / rate);
    std::uint64_t pow2 = 1;
    while (static_cast<double>(pow2) < period && pow2 < (1ULL << 30))
        pow2 <<= 1;
    return pow2;
}

/** Builds the benchmark module for one profile. */
class SpecBuilder
{
  public:
    SpecBuilder(const SpecProfile &profile, double scale)
        : _profile(profile),
          _iterations(std::max<std::uint64_t>(
              64, static_cast<std::uint64_t>(
                      static_cast<double>(profile.work_items) * scale))),
          _builder(_module)
    {
        _module.name = profile.name;
        _module.num_signature_classes = 3;
    }

    ir::Module build();

  private:
    void buildHandlers();
    void buildHelpers();
    void buildClass();
    void buildGlobals();
    void buildMain();

    /**
     * Open a guarded sub-block that runs every `period` iterations.
     * Emits the condition in the current block; leaves the builder in
     * the "do" block. Returns the continuation block to br to / resume.
     */
    int beginPeriodic(std::uint64_t period, int iter_reg);

    /** XOR a value into the checksum slot. */
    void foldChecksum(int value_reg);

    /** True when the program contains any protected pointers. */
    bool usesFuncPtrs() const;

    const SpecProfile &_profile;
    const std::uint64_t _iterations;
    ir::Module _module;
    IrBuilder _builder;

    // Function ids.
    int _handlers[kNumHandlers] = {-1, -1, -1, -1};
    int _casted_handler = -1;
    int _helper_top = -1;
    int _class_id = -1;

    // Global ids.
    int _dispatch_table = -1;
    int _casted_slot = -1;
    int _decayed_slot = -1;
    int _stale_ref = -1;

    // main() registers.
    int _chk_slot = -1;
    int _const_zero = -1;
    int _const_one = -1;
};

void
SpecBuilder::buildHandlers()
{
    for (int k = 0; k < kNumHandlers; ++k) {
        _handlers[k] = _builder.beginFunction(
            "handler_" + std::to_string(k), 1, kSigHandler);
        const int factor = _builder.constInt(2 * k + 3);
        const int scaled =
            _builder.arith(ArithKind::Mul, _builder.param(0), factor);
        const int bias = _builder.constInt(k + 1);
        const int out = _builder.arith(ArithKind::Add, scaled, bias);
        _builder.ret(out);
        _builder.endFunction();
    }

    if (_profile.uses_casted_signature) {
        // The povray pattern: defined as void*(void*) [class A], later
        // called as void*(pov::Object_Struct*) [class B].
        _casted_handler =
            _builder.beginFunction("generic_handler", 1, kSigA);
        const int c = _builder.constInt(17);
        _builder.ret(_builder.arith(ArithKind::Add, _builder.param(0), c));
        _builder.endFunction();
    }
}

void
SpecBuilder::buildHelpers()
{
    // Helper chain: helper_{depth-1} ... helper_0 (top). Each level does
    // a slice of the iteration's arithmetic, writes memory (qualifying
    // it for return-pointer instrumentation), and calls the next.
    const int depth = std::max(1, _profile.call_depth);
    const int per_level =
        std::max(1, _profile.arith_per_iter / depth);

    int next_id = -1;
    for (int level = depth - 1; level >= 0; --level) {
        const int id = _builder.beginFunction(
            _profile.name + "_helper_" + std::to_string(level), 1, -1);
        const int scratch = _builder.allocaOp(16);
        _builder.store(scratch, _builder.param(0), TypeRef::intTy());

        int acc = _builder.load(scratch, TypeRef::intTy());
        for (int op = 0; op < per_level; ++op) {
            const int c = _builder.constInt(0x9e37 + op * 13);
            acc = _builder.arith(
                op % 3 == 0 ? ArithKind::Add
                            : (op % 3 == 1 ? ArithKind::Xor
                                           : ArithKind::Mul),
                acc, c);
        }

        if (level == depth - 1) {
            if (_profile.heavy_recursion) {
                // Bounded self-recursion on the low bits of the arg
                // (gcc/sjeng-style call-stack pressure).
                const int seven = _builder.constInt(7);
                const int low =
                    _builder.arith(ArithKind::And, _builder.param(0),
                                   seven);
                const int bb_rec = _builder.newBlock();
                const int bb_done = _builder.newBlock();
                _builder.condBr(low, bb_rec, bb_done);
                _builder.setBlock(bb_rec);
                const int one = _builder.constInt(1);
                const int less =
                    _builder.arith(ArithKind::Sub, low, one);
                const int sub = _builder.callDirect(id, {less});
                const int mixed =
                    _builder.arith(ArithKind::Add, acc, sub);
                _builder.ret(mixed);
                _builder.setBlock(bb_done);
                _builder.ret(acc);
            } else {
                _builder.ret(acc);
            }
        } else {
            const int sub = _builder.callDirect(next_id, {acc});
            _builder.ret(_builder.arith(ArithKind::Xor, acc, sub));
        }
        _builder.endFunction();
        next_id = id;
    }
    _helper_top = next_id;
}

void
SpecBuilder::buildClass()
{
    if (!_profile.cpp)
        return;
    // Three virtual methods; each returns a function of its argument.
    std::vector<int> methods;
    for (int m = 0; m < 3; ++m) {
        const int id = _builder.beginFunction(
            "Node_method_" + std::to_string(m), 2, -1);
        const int c = _builder.constInt(31 + m);
        // param(0) = this, param(1) = x.
        _builder.ret(_builder.arith(ArithKind::Mul, _builder.param(1), c));
        _builder.endFunction();
        methods.push_back(id);
    }
    _class_id = _builder.addClass("Node", methods);
}

bool
SpecBuilder::usesFuncPtrs() const
{
    return _profile.indirect_call_rate > 0 ||
           _profile.funcptr_store_rate > 0 ||
           _profile.uses_casted_signature ||
           _profile.uses_decayed_funcptr || _profile.static_init_uaf ||
           _profile.block_op_allowlist;
}

void
SpecBuilder::buildGlobals()
{
    if (!usesFuncPtrs())
        return; // pure-numeric kernels: no control-flow pointers at all
    Global table;
    table.name = "dispatch_table";
    table.size = kNumHandlers * 8;
    table.section = Section::Data;
    table.funcptr_class = kSigHandler;
    for (int k = 0; k < kNumHandlers; ++k)
        table.funcptr_init.emplace_back(k * 8, _handlers[k]);
    _dispatch_table = _builder.addGlobal(std::move(table));

    if (_profile.uses_casted_signature) {
        Global slot;
        slot.name = "generic_slot";
        slot.size = 8;
        slot.funcptr_class = kSigA;
        slot.funcptr_init.emplace_back(0, _casted_handler);
        _casted_slot = _builder.addGlobal(std::move(slot));
    }
    if (_profile.uses_decayed_funcptr) {
        Global slot;
        slot.name = "decayed_slot";
        slot.size = 8;
        _decayed_slot = _builder.addGlobal(std::move(slot));
    }
    if (_profile.static_init_uaf) {
        Global slot;
        slot.name = "stale_ref";
        slot.size = 8;
        _stale_ref = _builder.addGlobal(std::move(slot));
    }
}

int
SpecBuilder::beginPeriodic(std::uint64_t period, int iter_reg)
{
    const int mask = _builder.constInt(period - 1);
    const int low = _builder.arith(ArithKind::And, iter_reg, mask);
    const int hit = _builder.arith(ArithKind::Eq, low, _const_zero);
    const int bb_do = _builder.newBlock();
    const int bb_next = _builder.newBlock();
    _builder.condBr(hit, bb_do, bb_next);
    _builder.setBlock(bb_do);
    return bb_next;
}

void
SpecBuilder::foldChecksum(int value_reg)
{
    const int old = _builder.load(_chk_slot, TypeRef::intTy());
    const int mixed = _builder.arith(ArithKind::Xor, old, value_reg);
    _builder.store(_chk_slot, mixed, TypeRef::intTy());
}

void
SpecBuilder::buildMain()
{
    _builder.beginFunction("main");
    if (_profile.block_op_allowlist) {
        _builder.currentFunction().attrs.block_op_allowlisted = true;
    }

    // --- Constants and locals ---------------------------------------
    _const_zero = _builder.constInt(0);
    _const_one = _builder.constInt(1);
    const int n = _builder.constInt(_iterations);
    _chk_slot = _builder.allocaOp(8);
    const int i_slot = _builder.allocaOp(8);
    const int buf1 = _builder.allocaOp(64);
    const int buf2 = _builder.allocaOp(64);
    // All allocas live in the entry block: the VM sizes frames from the
    // static alloca footprint, so loops must not re-execute allocas.
    const int choice_slot = _builder.allocaOp(8);
    _builder.store(_chk_slot, _builder.constInt(0x1234), TypeRef::intTy());
    _builder.store(i_slot, _const_zero, TypeRef::intTy());
    const int table_addr =
        usesFuncPtrs() ? _builder.globalAddr(_dispatch_table) : -1;
    const int hot_slot = _builder.allocaOp(8);
    const int dead_slot = _builder.allocaOp(8);
    (void)choice_slot;

    // --- C++ object construction -------------------------------------
    int obj = -1;
    if (_profile.cpp) {
        const int sz = _builder.constInt(32);
        obj = _builder.mallocOp(sz);
        const int vt =
            _builder.globalAddr(_module.classes[_class_id].vtable_global);
        _builder.store(obj, vt, TypeRef::vtablePtr());
    }

    // --- Trait setup ---------------------------------------------------
    if (_profile.uses_decayed_funcptr) {
        // Store a function pointer through a type-opaque (int) access:
        // HQ's taint analysis still protects it; type-driven designs
        // miss it (§5.1).
        const int fp = _builder.funcAddr(_handlers[0], kSigHandler);
        const int decayed = _builder.cast(fp, TypeRef::intTy());
        const int slot = _builder.globalAddr(_decayed_slot);
        _builder.store(slot, decayed, TypeRef::intTy());
    }
    if (_profile.block_op_allowlist) {
        // A decayed function pointer placed in a plain byte buffer that
        // the main loop memcpy's around: strict subtype checking cannot
        // see it, hence the allowlist (§4.1.4).
        const int fp = _builder.funcAddr(_handlers[1], kSigHandler);
        const int decayed = _builder.cast(fp, TypeRef::intTy());
        const int off = _builder.constInt(8);
        const int at = _builder.arith(ArithKind::Add, buf1, off);
        _builder.store(at, decayed, TypeRef::intTy());
    }
    if (_profile.static_init_uaf) {
        // The omnetpp static-initialization-order bug (§5.2): an object
        // holding a control-flow pointer is destroyed during startup,
        // but a reference survives and is used later.
        const int sz = _builder.constInt(24);
        const int block = _builder.mallocOp(sz);
        const int fp = _builder.funcAddr(_handlers[1], kSigHandler);
        _builder.store(block, fp, TypeRef::funcPtr(kSigHandler));
        _builder.freeOp(block);
        const int ref = _builder.globalAddr(_stale_ref);
        _builder.store(ref, block, TypeRef::dataPtr());
    }

    // --- Loop skeleton -------------------------------------------------
    const int bb_head = _builder.newBlock();
    const int bb_body = _builder.newBlock();
    const int bb_exit = _builder.newBlock();
    _builder.br(bb_head);

    _builder.setBlock(bb_head);
    const int iv_head = _builder.load(i_slot, TypeRef::intTy());
    const int more = _builder.arith(ArithKind::Lt, iv_head, n);
    _builder.condBr(more, bb_body, bb_exit);

    _builder.setBlock(bb_body);
    const int iv = _builder.load(i_slot, TypeRef::intTy());

    // Fixed per-iteration work: the helper-chain computation.
    const int helper_out = _builder.callDirect(_helper_top, {iv});
    foldChecksum(helper_out);

    // Indirect call through the dispatch table.
    if (const auto period = periodFor(_profile.indirect_call_rate)) {
        const int next = beginPeriodic(period, iv);
        const int hmask = _builder.constInt(kNumHandlers - 1);
        const int idx = _builder.arith(ArithKind::And, iv, hmask);
        const int eight = _builder.constInt(8);
        const int byte_off = _builder.arith(ArithKind::Mul, idx, eight);
        const int slot_addr =
            _builder.arith(ArithKind::Add, table_addr, byte_off);
        const int fp =
            _builder.load(slot_addr, TypeRef::funcPtr(kSigHandler));
        const int out = _builder.callIndirect(fp, {iv}, kSigHandler);
        foldChecksum(out);
        _builder.br(next);
        _builder.setBlock(next);
    }

    // Virtual call (half devirtualizable, half through the vtable).
    if (_profile.cpp) {
        if (const auto period = periodFor(_profile.vcall_rate)) {
            const int next = beginPeriodic(period, iv);
            const int v1 = _builder.vcall(obj, 0, {obj, iv}, _class_id);
            foldChecksum(v1);
            const int v2 = _builder.vcall(obj, 1, {obj, iv}, -1);
            foldChecksum(v2);
            _builder.br(next);
            _builder.setBlock(next);
        }
    }

    // Function-pointer store: rotate dispatch-table entries.
    if (const auto period = periodFor(_profile.funcptr_store_rate)) {
        const int next = beginPeriodic(period, iv);
        const int hmask = _builder.constInt(kNumHandlers - 1);
        const int idx = _builder.arith(ArithKind::And, iv, hmask);
        const int eight = _builder.constInt(8);
        const int byte_off = _builder.arith(ArithKind::Mul, idx, eight);
        const int slot_addr =
            _builder.arith(ArithKind::Add, table_addr, byte_off);
        const int three = _builder.constInt(3);
        const int pick = _builder.arith(ArithKind::And, iv, three);
        // Select handler (iv & 3) via a small chain of direct funcAddrs
        // (rotation keeps the table contents valid).
        const int fp0 = _builder.funcAddr(_handlers[0], kSigHandler);
        const int fp1 = _builder.funcAddr(_handlers[1], kSigHandler);
        const int is_even =
            _builder.arith(ArithKind::Eq, pick, _const_zero);
        const int bb_even = _builder.newBlock();
        const int bb_odd = _builder.newBlock();
        const int bb_store = _builder.newBlock();
        _builder.condBr(is_even, bb_even, bb_odd);
        _builder.setBlock(bb_even);
        _builder.store(choice_slot, fp0, TypeRef::funcPtr(kSigHandler));
        _builder.br(bb_store);
        _builder.setBlock(bb_odd);
        _builder.store(choice_slot, fp1, TypeRef::funcPtr(kSigHandler));
        _builder.br(bb_store);
        _builder.setBlock(bb_store);
        const int chosen =
            _builder.load(choice_slot, TypeRef::funcPtr(kSigHandler));
        _builder.store(slot_addr, chosen, TypeRef::funcPtr(kSigHandler));
        // Hot local handler: define immediately dominates the checked
        // load with no clobber between them — store-to-load forwarding
        // elides this check (§4.1.4).
        _builder.store(hot_slot, chosen, TypeRef::funcPtr(kSigHandler));
        const int hot =
            _builder.load(hot_slot, TypeRef::funcPtr(kSigHandler));
        const int hot_out = _builder.callIndirect(hot, {iv}, kSigHandler);
        foldChecksum(hot_out);
        // Dead store of a control-flow pointer (an inlined-destructor
        // artifact): never checked and never escaping, so message
        // elision removes its define entirely.
        _builder.store(dead_slot, chosen, TypeRef::funcPtr(kSigHandler));
        _builder.br(next);
        _builder.setBlock(next);
    }

    // Block memory operation.
    if (const auto period = periodFor(_profile.block_op_rate)) {
        const int next = beginPeriodic(period, iv);
        const int size = _builder.constInt(64);
        _builder.memcpyOp(buf2, buf1, size, TypeRef::intTy());
        _builder.br(next);
        _builder.setBlock(next);
    }

    // Allowlist trait: use the function pointer carried by the memcpy.
    if (_profile.block_op_allowlist) {
        const auto block_period =
            std::max<std::uint64_t>(1, periodFor(_profile.block_op_rate));
        const int next = beginPeriodic(block_period * 4, iv);
        const int off = _builder.constInt(8);
        const int at = _builder.arith(ArithKind::Add, buf2, off);
        const int fp = _builder.load(at, TypeRef::funcPtr(kSigHandler));
        const int out = _builder.callIndirect(fp, {iv}, kSigHandler);
        foldChecksum(out);
        _builder.br(next);
        _builder.setBlock(next);
    }

    // Heap allocation churn.
    if (const auto period = periodFor(_profile.alloc_rate)) {
        const int next = beginPeriodic(period, iv);
        const int size = _builder.constInt(48);
        const int p = _builder.mallocOp(size);
        _builder.store(p, iv, TypeRef::intTy());
        const int back = _builder.load(p, TypeRef::intTy());
        foldChecksum(back);
        _builder.freeOp(p);
        if (_profile.cpp) {
            // Long-lived heap objects carrying control-flow pointers
            // (xalancbmk-style DOM nodes): the verifier's shadow store
            // grows with them (§5.4's multi-million-entry maximum).
            const int osize = _builder.constInt(16);
            const int node = _builder.mallocOp(osize);
            const int fp = _builder.funcAddr(_handlers[2], kSigHandler);
            _builder.store(node, fp, TypeRef::funcPtr(kSigHandler));
        }
        _builder.br(next);
        _builder.setBlock(next);
    }

    // System call.
    if (const auto period = periodFor(_profile.syscall_rate)) {
        const int next = beginPeriodic(period, iv);
        _builder.syscall(1); // write(2)-like
        _builder.br(next);
        _builder.setBlock(next);
    }

    // Cast-signature trait (every 64 iterations).
    if (_profile.uses_casted_signature) {
        const int next = beginPeriodic(64, iv);
        const int slot = _builder.globalAddr(_casted_slot);
        // The pointer was defined (and MAC'd/registered) with class A,
        // but this use site loads and calls it as class B — the povray
        // decay pattern that type-keyed designs flag.
        const int fp = _builder.load(slot, TypeRef::funcPtr(kSigB));
        const int out = _builder.callIndirect(fp, {iv}, kSigB);
        foldChecksum(out);
        _builder.br(next);
        _builder.setBlock(next);
    }

    // Decayed-pointer trait (every 128 iterations).
    if (_profile.uses_decayed_funcptr) {
        const int next = beginPeriodic(128, iv);
        const int slot = _builder.globalAddr(_decayed_slot);
        const int fp = _builder.load(slot, TypeRef::funcPtr(kSigHandler));
        const int out = _builder.callIndirect(fp, {iv}, kSigHandler);
        foldChecksum(out);
        _builder.br(next);
        _builder.setBlock(next);
    }

    // Static-initialization-order UAF (every 4096 iterations).
    if (_profile.static_init_uaf) {
        const int next = beginPeriodic(4096, iv);
        const int ref = _builder.globalAddr(_stale_ref);
        const int stale = _builder.load(ref, TypeRef::dataPtr());
        const int fp =
            _builder.load(stale, TypeRef::funcPtr(kSigHandler));
        const int out = _builder.callIndirect(fp, {iv}, kSigHandler);
        foldChecksum(out);
        _builder.br(next);
        _builder.setBlock(next);
    }

    // Loop increment and back edge.
    const int incremented =
        _builder.arith(ArithKind::Add, iv, _const_one);
    _builder.store(i_slot, incremented, TypeRef::intTy());
    _builder.br(bb_head);

    _builder.setBlock(bb_exit);
    const int chk = _builder.load(_chk_slot, TypeRef::intTy());
    _builder.ret(chk);
    _builder.endFunction();
    _module.entry_function =
        static_cast<int>(_module.functions.size()) - 1;
}

ir::Module
SpecBuilder::build()
{
    buildHandlers();
    buildHelpers();
    buildClass();
    buildGlobals();
    buildMain();
    return std::move(_module);
}

} // namespace

ir::Module
buildSpecModule(const SpecProfile &profile, double scale)
{
    SpecBuilder builder(profile, scale);
    return builder.build();
}

} // namespace hq
