/**
 * @file
 * Profiles of the 48 benchmarks used in the paper's evaluation (SPEC
 * CPU2006, SPEC CPU2017, and NGINX; §5).
 *
 * The real benchmarks are not redistributable, so each is replaced by a
 * deterministic synthetic program whose *character* — indirect-call
 * rate, function-pointer store rate, block-memory traffic, allocation
 * behavior, recursion, C++-ness, syscall rate — mimics the named
 * benchmark, plus trait flags that reproduce the behaviors the paper
 * reports per benchmark:
 *
 *  - uses_casted_signature: povray-style `void*(void*)` pointers called
 *    through a different static type. Benign; trips type-matching CFI
 *    (Clang/LLVM CFI and CCFI false positives; §5.1). Mechanical.
 *  - uses_decayed_funcptr: function pointers stored through type-opaque
 *    accesses. Benign; CCFI misses the MAC (false positive) and CPI
 *    misses the safe-store redirect (NULL crash; §5.1). Mechanical.
 *  - static_init_uaf: the omnetpp static-initialization-order
 *    use-after-free the paper discovered (§5.2). A *genuine* bug that
 *    only HQ-CFI detects. Mechanical.
 *  - ccfi_abi_break / ccfi_x87_sensitive: CCFI reserves eleven XMM
 *    registers, breaking the platform calling convention (crashes) and
 *    forcing x87 usage (wrong numerical output). These are compiler-ABI
 *    artifacts outside a portable VM's reach, so they are *modeled* as
 *    per-profile outcome overrides (documented substitution).
 *  - old_llvm_baseline_bug: two benchmarks fail even on the LLVM
 *    3.3/3.4 baselines CCFI/CPI build against (§5.1). Modeled.
 */

#ifndef HQ_WORKLOADS_SPEC_PROFILES_H
#define HQ_WORKLOADS_SPEC_PROFILES_H

#include <cstdint>
#include <string>
#include <vector>

namespace hq {

struct SpecProfile
{
    std::string name;
    bool cpp = false; //!< rendered with a '+' suffix, as in the paper

    /** Main-loop iterations at scale 1.0 (harnesses scale this). */
    std::uint64_t work_items = 20000;

    // Per-iteration behavior rates.
    double indirect_call_rate = 0.1; //!< calls through function pointers
    double vcall_rate = 0.0;         //!< C++ virtual calls
    double funcptr_store_rate = 0.02; //!< control-flow pointer writes
    double block_op_rate = 0.01;     //!< memcpy/memmove of structs
    double alloc_rate = 0.02;        //!< malloc/free pairs
    double syscall_rate = 0.001;     //!< direct/indirect system calls
    int arith_per_iter = 40;         //!< plain computation per iteration
    int call_depth = 2;              //!< helper-call nesting
    int num_handlers = 4;            //!< distinct indirect-call targets

    // Trait flags (see file comment).
    bool uses_casted_signature = false;
    bool uses_decayed_funcptr = false;
    bool static_init_uaf = false;
    bool ccfi_abi_break = false;
    bool ccfi_x87_sensitive = false;
    bool old_llvm_baseline_bug = false;
    bool block_op_allowlist = false;
    bool heavy_recursion = false;
};

/** The 48 benchmark profiles (47 SPEC-like + nginx). */
const std::vector<SpecProfile> &specProfiles();

/** Profile by name; panics when absent. */
const SpecProfile &specProfile(const std::string &name);

} // namespace hq

#endif // HQ_WORKLOADS_SPEC_PROFILES_H
