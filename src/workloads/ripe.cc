#include "workloads/ripe.h"

#include "common/log.h"
#include "ipc/shm_channel.h"
#include "ir/builder.h"
#include "policy/pointer_integrity.h"
#include "runtime/vm.h"
#include "verifier/verifier.h"

namespace hq {

using namespace ir;

namespace {

/// Signature classes: victim call sites use class 0; fresh shellcode is
/// class 1 (type-incompatible, so type-matching CFI can reject it).
constexpr int kSigSite = 0;
constexpr int kSigShellcode = 1;

constexpr std::uint64_t kConfirmMagic = 0x5AFE5AFE5AFE5AFEULL;

} // namespace

const char *
attackOriginName(AttackOrigin origin)
{
    switch (origin) {
      case AttackOrigin::Bss: return "bss";
      case AttackOrigin::Data: return "data";
      case AttackOrigin::Heap: return "heap";
      case AttackOrigin::Stack: return "stack";
    }
    return "?";
}

const char *
attackTargetName(AttackTarget target)
{
    switch (target) {
      case AttackTarget::FuncPtr: return "funcptr";
      case AttackTarget::StructFuncPtr: return "structfuncptr";
      case AttackTarget::LongjmpBuf: return "longjmpbuf";
      case AttackTarget::VtablePtr: return "vtableptr";
      case AttackTarget::VtableReuse: return "vtablereuse";
      case AttackTarget::RetPtr: return "retptr";
    }
    return "?";
}

const char *
attackTechniqueName(AttackTechnique technique)
{
    switch (technique) {
      case AttackTechnique::DirectOverflow: return "direct";
      case AttackTechnique::IndirectRedirect: return "indirect";
      case AttackTechnique::DisclosureWrite: return "disclose-write";
      case AttackTechnique::DisclosureSweep: return "disclose-sweep";
    }
    return "?";
}

std::string
RipeAttack::name() const
{
    return std::string(attackOriginName(origin)) + "/" +
           attackTargetName(target) + "/" +
           attackTechniqueName(technique) + "/" +
           (payload == AttackPayload::Shellcode ? "shellcode" : "libc") +
           "#" + std::to_string(variant);
}

std::vector<RipeAttack>
ripeAttackSuite(int variants_per_group)
{
    std::vector<RipeAttack> suite;
    auto add = [&](AttackOrigin o, AttackTarget t, AttackTechnique q,
                   AttackPayload p) {
        for (int v = 0; v < variants_per_group; ++v)
            suite.push_back(RipeAttack{o, t, q, p, v});
    };

    for (AttackOrigin origin :
         {AttackOrigin::Bss, AttackOrigin::Data, AttackOrigin::Heap,
          AttackOrigin::Stack}) {
        using T = AttackTarget;
        using Q = AttackTechnique;
        using P = AttackPayload;
        add(origin, T::FuncPtr, Q::DirectOverflow, P::Shellcode);
        add(origin, T::FuncPtr, Q::DirectOverflow, P::Libc);
        add(origin, T::FuncPtr, Q::IndirectRedirect, P::Shellcode);
        add(origin, T::FuncPtr, Q::IndirectRedirect, P::Libc);
        add(origin, T::StructFuncPtr, Q::DirectOverflow, P::Shellcode);
        add(origin, T::StructFuncPtr, Q::IndirectRedirect, P::Shellcode);
        add(origin, T::LongjmpBuf, Q::DirectOverflow, P::Shellcode);
        add(origin, T::LongjmpBuf, Q::IndirectRedirect, P::Shellcode);
        add(origin, T::VtablePtr, Q::DirectOverflow, P::Shellcode);
        add(origin, T::VtablePtr, Q::IndirectRedirect, P::Shellcode);
        add(origin, T::VtableReuse, Q::DirectOverflow, P::Shellcode);
        if (origin == AttackOrigin::Stack) {
            // Stack-origin return-pointer attacks are the classic
            // contiguous smash: disclosure locates the slot, but the
            // write is still a linear sweep from the buffer.
            add(origin, T::RetPtr, Q::DisclosureSweep, P::Shellcode);
            add(origin, T::RetPtr, Q::DisclosureSweep, P::Libc);
        } else {
            add(origin, T::RetPtr, Q::DisclosureWrite, P::Shellcode);
            add(origin, T::RetPtr, Q::DisclosureWrite, P::Libc);
        }
    }
    return suite;
}

namespace {

/** Builds the victim program for one attack. */
class RipeBuilder
{
  public:
    explicit RipeBuilder(const RipeAttack &attack)
        : _attack(attack), _builder(_module)
    {
        _module.name = "ripe." + attack.name();
        _module.num_signature_classes = 2;
    }

    ir::Module build();

    int payloadFunction() const { return _payload_fn; }
    int confirmedGlobal() const { return _confirmed; }

  private:
    void buildFunctions();
    void buildGlobals();
    void buildVictim();

    /** Emit a sweep storing value_reg at [from, to] step 8. */
    void emitSweep(int from_reg, int to_reg, int value_reg, int i_slot);

    const RipeAttack _attack;
    ir::Module _module;
    IrBuilder _builder;

    int _libc_fn = -1;
    int _payload_fn = -1;
    int _benign_fn = -1;
    int _hijack_fn = -1; //!< function whose entry means attack success
    int _class_a = -1;
    int _class_b = -1;
    int _confirmed = -1;
    int _attacker_input = -1;
    int _g_buf = -1;
    int _g_target = -1;
};

void
RipeBuilder::buildFunctions()
{
    // A confirming function body: perform the verification system call,
    // then record success (only reachable if the syscall completed).
    auto confirmBody = [&] {
        _builder.syscall(59); // execve-like
        const int addr = _builder.globalAddr(_confirmed);
        const int magic = _builder.constInt(kConfirmMagic);
        _builder.store(addr, magic, TypeRef::intTy());
        _builder.ret(_builder.constInt(1));
    };

    // Globals must exist before function bodies that reference them.
    Global confirmed;
    confirmed.name = "exploit_confirmed";
    confirmed.size = 8;
    confirmed.section = Section::Data;
    _confirmed = _builder.addGlobal(std::move(confirmed));

    _libc_fn = _builder.beginFunction("libc_system", 1, kSigSite);
    confirmBody();
    _builder.endFunction();

    _payload_fn =
        _builder.beginFunction("attack_payload", 1, kSigShellcode);
    confirmBody();
    _builder.endFunction();

    _benign_fn = _builder.beginFunction("benign_handler", 1, kSigSite);
    const int one = _builder.constInt(1);
    _builder.ret(_builder.arith(ArithKind::Add, _builder.param(0), one));
    _builder.endFunction();

    // Vtable classes. method_b doubles as an existing-code gadget for
    // the vtable-reuse attack, so reaching it confirms the exploit.
    const int method_a =
        _builder.beginFunction("ClassA_method", 2, -1);
    {
        const int c = _builder.constInt(3);
        _builder.ret(
            _builder.arith(ArithKind::Mul, _builder.param(1), c));
    }
    _builder.endFunction();
    const int method_b =
        _builder.beginFunction("ClassB_method", 2, -1);
    confirmBody();
    _builder.endFunction();
    _class_a = _builder.addClass("ClassA", {method_a});
    _class_b = _builder.addClass("ClassB", {method_b});

    _hijack_fn = _attack.target == AttackTarget::VtableReuse
                     ? method_b
                     : (_attack.payload == AttackPayload::Libc
                            ? _libc_fn
                            : _payload_fn);
}

void
RipeBuilder::buildGlobals()
{
    // Attacker-controlled input: carries the hijack value as raw data
    // (a network payload), so no compiler-visible function-pointer
    // expression is involved in the corrupting writes.
    Global input;
    input.name = "attacker_input";
    input.size = 16;
    input.section = Section::Data;
    input.word_init.emplace_back(0, Vm::encodeFuncPtr(_hijack_fn));
    _attacker_input = _builder.addGlobal(std::move(input));

    if (_attack.origin == AttackOrigin::Bss ||
        _attack.origin == AttackOrigin::Data) {
        const Section section = _attack.origin == AttackOrigin::Bss
                                    ? Section::Bss
                                    : Section::Data;
        Global buf;
        buf.name = "overflow_buf";
        buf.size = 64;
        buf.section = section;
        _g_buf = _builder.addGlobal(std::move(buf));
        // Declared immediately after the buffer: adjacent in memory.
        Global target;
        target.name = "victim_target";
        target.size = 16;
        target.section = section;
        _g_target = _builder.addGlobal(std::move(target));
    }
}

void
RipeBuilder::emitSweep(int from_reg, int to_reg, int value_reg, int i_slot)
{
    _builder.store(i_slot, from_reg, TypeRef::dataPtr());
    const int bb_head = _builder.newBlock();
    const int bb_body = _builder.newBlock();
    const int bb_done = _builder.newBlock();
    _builder.br(bb_head);

    _builder.setBlock(bb_head);
    const int cursor = _builder.load(i_slot, TypeRef::dataPtr());
    const int eight = _builder.constInt(8);
    const int limit = _builder.arith(ArithKind::Add, to_reg, eight);
    const int more = _builder.arith(ArithKind::Lt, cursor, limit);
    _builder.condBr(more, bb_body, bb_done);

    _builder.setBlock(bb_body);
    const int c2 = _builder.load(i_slot, TypeRef::dataPtr());
    _builder.store(c2, value_reg, TypeRef::intTy()); // the overflow
    const int e2 = _builder.constInt(8);
    const int next = _builder.arith(ArithKind::Add, c2, e2);
    _builder.store(i_slot, next, TypeRef::dataPtr());
    _builder.br(bb_head);

    _builder.setBlock(bb_done);
}

void
RipeBuilder::buildVictim()
{
    _builder.beginFunction("victim", 1);

    // Allocas, in frame order. The sweep loop counter and scratch come
    // *before* the buffer so linear overwrites cannot clobber them.
    const int i_slot = _builder.allocaOp(8);
    const int scratch = _builder.allocaOp(8);
    _builder.store(scratch, _builder.param(0), TypeRef::intTy());

    int buf = -1;       // origin buffer address
    int target = -1;    // corrupted location
    int obj = -1;       // vtable-attack object
    int fp_between = -1; // protected local between buffer and retptr

    const bool stack_origin = _attack.origin == AttackOrigin::Stack;
    const bool vtable_attack =
        _attack.target == AttackTarget::VtablePtr ||
        _attack.target == AttackTarget::VtableReuse;

    // --- Place the origin buffer and the adjacent target -------------
    if (stack_origin) {
        buf = _builder.allocaOp(64);
        if (_attack.target == AttackTarget::RetPtr) {
            // A protected function-pointer local sits between the
            // buffer and the frame's return-pointer slot: a sweep will
            // corrupt it on the way, and the victim uses it.
            fp_between = _builder.allocaOp(8);
        } else if (vtable_attack) {
            obj = _builder.allocaOp(16);
            target = obj;
        } else {
            const int region = _builder.allocaOp(16);
            target = _attack.target == AttackTarget::FuncPtr
                         ? region
                         : [&] {
                               const int off = _builder.constInt(8);
                               return _builder.arith(ArithKind::Add,
                                                     region, off);
                           }();
        }
    } else if (_attack.origin == AttackOrigin::Heap) {
        const int sz64 = _builder.constInt(64);
        buf = _builder.mallocOp(sz64);
        const int sz16 = _builder.constInt(16);
        const int block = _builder.mallocOp(sz16); // contiguous
        if (vtable_attack) {
            obj = block;
            target = obj;
        } else if (_attack.target == AttackTarget::FuncPtr) {
            target = block;
        } else {
            const int off = _builder.constInt(8);
            target = _builder.arith(ArithKind::Add, block, off);
        }
    } else { // Bss / Data globals
        buf = _builder.globalAddr(_g_buf);
        const int region = _builder.globalAddr(_g_target);
        if (vtable_attack) {
            obj = region;
            target = obj;
        } else if (_attack.target == AttackTarget::FuncPtr) {
            target = region;
        } else {
            const int off = _builder.constInt(8);
            target = _builder.arith(ArithKind::Add, region, off);
        }
    }

    // --- Legitimate initialization of the protected pointer ----------
    if (vtable_attack) {
        const int vt =
            _builder.globalAddr(_module.classes[_class_a].vtable_global);
        _builder.store(obj, vt, TypeRef::vtablePtr());
    } else if (_attack.target != AttackTarget::RetPtr) {
        const int benign = _builder.funcAddr(_benign_fn, kSigSite);
        _builder.store(target, benign, TypeRef::funcPtr(kSigSite));
    }
    if (fp_between >= 0) {
        const int benign = _builder.funcAddr(_benign_fn, kSigSite);
        _builder.store(fp_between, benign, TypeRef::funcPtr(kSigSite));
    }

    // --- The attacker value (raw data from "input") -------------------
    const int input_addr = _builder.globalAddr(_attacker_input);
    int attack_value = _builder.load(input_addr, TypeRef::intTy());
    if (_attack.target == AttackTarget::VtablePtr) {
        // Fake vtable: point the object at the attacker's own data,
        // whose first word is the payload address.
        attack_value = input_addr;
    } else if (_attack.target == AttackTarget::VtableReuse) {
        attack_value =
            _builder.globalAddr(_module.classes[_class_b].vtable_global);
    }

    // --- Corruption -----------------------------------------------------
    switch (_attack.technique) {
      case AttackTechnique::DirectOverflow:
        emitSweep(buf, target, attack_value, i_slot);
        break;
      case AttackTechnique::IndirectRedirect: {
        // The overflow only reaches a data pointer inside the buffer;
        // the victim then writes through it (write-what-where).
        const int sixteen = _builder.constInt(16);
        const int ptr_slot = _builder.arith(ArithKind::Add, buf, sixteen);
        _builder.store(ptr_slot, target, TypeRef::dataPtr());
        const int where = _builder.load(ptr_slot, TypeRef::dataPtr());
        _builder.store(where, attack_value, TypeRef::intTy());
        break;
      }
      case AttackTechnique::DisclosureWrite: {
        const int ret_slot = _builder.retAddrAddr();
        _builder.store(ret_slot, attack_value, TypeRef::intTy());
        break;
      }
      case AttackTechnique::DisclosureSweep: {
        const int ret_slot = _builder.retAddrAddr();
        emitSweep(buf, ret_slot, attack_value, i_slot);
        break;
      }
    }

    // --- Benign use of the (now corrupt) pointer ----------------------
    if (fp_between >= 0) {
        const int fp =
            _builder.load(fp_between, TypeRef::funcPtr(kSigSite));
        const int x = _builder.load(scratch, TypeRef::intTy());
        _builder.callIndirect(fp, {x}, kSigSite);
    }
    if (vtable_attack) {
        const int x = _builder.load(scratch, TypeRef::intTy());
        _builder.vcall(obj, 0, {obj, x}, -1);
    } else if (_attack.target != AttackTarget::RetPtr) {
        const int fp = _builder.load(target, TypeRef::funcPtr(kSigSite));
        const int x = _builder.load(scratch, TypeRef::intTy());
        _builder.callIndirect(fp, {x}, kSigSite);
    }
    _builder.ret(_builder.constInt(0)); // retptr attacks fire here
    _builder.endFunction();
}

ir::Module
RipeBuilder::build()
{
    buildFunctions();
    buildGlobals();
    buildVictim();

    const int victim = static_cast<int>(_module.functions.size()) - 1;
    _builder.beginFunction("main");
    const int x = _builder.constInt(7);
    _builder.callDirect(victim, {x});
    const int addr = _builder.globalAddr(_confirmed);
    const int confirmed = _builder.load(addr, TypeRef::intTy());
    _builder.ret(confirmed);
    _builder.endFunction();
    _module.entry_function = static_cast<int>(_module.functions.size()) - 1;
    return std::move(_module);
}

} // namespace

ir::Module
buildRipeModule(const RipeAttack &attack)
{
    RipeBuilder builder(attack);
    return builder.build();
}

RipeResult
runRipeAttack(const RipeAttack &attack, CfiDesign design,
              std::size_t num_shards, WireFormat format,
              std::size_t speculation_window)
{
    RipeBuilder builder(attack);
    ir::Module module = builder.build();

    Status status = instrumentModule(module, design);
    if (!status.isOk())
        panic("ripe instrumentation failed: " + status.toString());

    const DesignInfo &info = designInfo(design);

    KernelModule::Config kconfig;
    kconfig.epoch = std::chrono::milliseconds(200);
    // Gating parity: the verdict must not depend on the window. The
    // confirmation syscall is execve-like (a speculation barrier), so
    // even under spec-K a detected violation blocks it.
    kconfig.speculation_window = speculation_window;
    KernelModule kernel(kconfig);
    auto policy = std::make_shared<PointerIntegrityPolicy>();
    Verifier::Config vconfig;
    vconfig.kill_on_violation = true; // effectiveness mode (§5.2)
    vconfig.num_shards = num_shards;  // verdicts must not depend on this
    Verifier verifier(kernel, policy, vconfig);

    ShmChannel channel(1 << 12);
    std::unique_ptr<HqRuntime> runtime;
    if (info.hq_messages) {
        // Negotiate before the first send; verdicts must be identical
        // across wire formats (the wire-parity tests check exactly that).
        if (format != WireFormat::V1 && !channel.negotiateFormat(format))
            panic("ripe channel refused wire format negotiation");
        verifier.attachChannel(&channel, 1);
        runtime = std::make_unique<HqRuntime>(1, channel, kernel);
        if (!runtime->enable().isOk())
            panic("ripe runtime enable failed");
        verifier.start();
    }

    VmConfig config = makeVmConfig(design);
    config.stop_on_inline_violation = true;
    config.max_instructions = 64ULL << 20;
    config.layout.stack_size = 256 << 10; // short disclosure sweeps
    Vm vm(module, config, runtime ? runtime.get() : nullptr);

    const RunResult result = vm.run();
    if (info.hq_messages)
        verifier.stop();

    RipeResult out;
    out.exit = result.exit;
    out.detail = result.detail;
    // Success requires the payload's confirmation store to have landed.
    std::uint64_t confirmed = 0;
    vm.memory().read64(vm.globalAddr(builder.confirmedGlobal()),
                       confirmed);
    out.succeeded = confirmed == kConfirmMagic;
    out.detected = result.inline_violations > 0 ||
                   (info.hq_messages && verifier.hasViolation(1));
    return out;
}

} // namespace hq
