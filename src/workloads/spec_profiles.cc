#include "workloads/spec_profiles.h"

#include <algorithm>

#include "common/log.h"

namespace hq {

namespace {

/** Behavior class shorthands for building the table. */
SpecProfile
base(const std::string &name, bool cpp, double icall, double vcall,
     double fpstore, double block, double alloc, double sys, int arith,
     int depth)
{
    SpecProfile p;
    p.name = name;
    p.cpp = cpp;
    // Rates are doubled relative to the nominal profile description:
    // the interpreted substrate dilutes per-op instrumentation cost, so
    // a denser mix restores the native overhead proportions.
    p.indirect_call_rate = std::min(1.0, icall * 2);
    p.vcall_rate = std::min(1.0, vcall * 2);
    p.funcptr_store_rate = std::min(1.0, fpstore * 2);
    p.block_op_rate = block;
    p.alloc_rate = alloc;
    p.syscall_rate = sys;
    // The interpreting VM compresses the native cost ratio between
    // plain computation and instrumentation work (an interpreted ALU op
    // costs ~10 ns where silicon needs ~0.3 ns, while a message send or
    // MAC costs roughly the same in both). Scaling the plain-compute
    // slice down keeps the *relative* instrumentation overhead in the
    // paper's range.
    p.arith_per_iter = std::max(2, arith / 6);
    p.call_depth = depth;
    p.num_handlers = cpp ? 6 : 4;
    return p;
}

/** Pointer-chasing interpreter-style C benchmark (perlbench, gcc). */
SpecProfile
ptrHeavyC(const std::string &name)
{
    return base(name, false, 0.5, 0.0, 0.10, 0.03, 0.05, 0.002, 25, 3);
}

/**
 * Compute-bound numeric kernel (lbm, milc, namd-like). The C variants
 * have no indirect control flow at all — these are the benchmarks the
 * paper reports with zero verifier entries (§5.4) and ~100%% relative
 * performance under every design.
 */
SpecProfile
numeric(const std::string &name, bool cpp = false)
{
    return base(name, cpp, cpp ? 0.005 : 0.0, cpp ? 0.01 : 0.0,
                cpp ? 0.001 : 0.0, 0.002, 0.002, 0.0005, 120, 1);
}

/** Mixed integer workload (bzip2, hmmer, sjeng, x264). */
SpecProfile
integer(const std::string &name)
{
    return base(name, false, 0.08, 0.0, 0.02, 0.02, 0.01, 0.001, 60, 2);
}

/** Virtual-dispatch-heavy C++ (omnetpp, xalancbmk, leela). */
SpecProfile
oopCpp(const std::string &name)
{
    return base(name, true, 0.15, 0.45, 0.08, 0.02, 0.08, 0.002, 25, 3);
}

std::vector<SpecProfile>
buildProfiles()
{
    std::vector<SpecProfile> v;

    // ----- SPEC CPU2006 (19 C/C++ benchmarks) -----------------------
    v.push_back(ptrHeavyC("perlbench"));
    v.back().block_op_allowlist = true; // decayed ptrs cross memcpy
    v.back().uses_decayed_funcptr = true;
    v.push_back(integer("bzip2"));
    v.push_back(ptrHeavyC("gcc"));
    v.back().heavy_recursion = true;
    v.back().block_op_allowlist = true;
    v.back().uses_casted_signature = true;
    v.push_back(base("mcf", false, 0.02, 0, 0.005, 0.005, 0.01, 0.001,
                     90, 1));
    v.push_back(integer("gobmk"));
    v.back().uses_casted_signature = true;
    v.back().heavy_recursion = true;
    v.push_back(integer("hmmer"));
    v.push_back(integer("sjeng"));
    v.back().heavy_recursion = true;
    v.push_back(numeric("libquantum"));
    v.push_back(base("h264ref", false, 0.6, 0, 0.12, 0.05, 0.02, 0.001,
                     18, 2)); // highest message rate (§5.4)
    v.back().uses_decayed_funcptr = true;
    v.push_back(oopCpp("omnetpp"));
    v.back().static_init_uaf = true; // §5.2: real UAF found by HQ-CFI
    v.back().ccfi_abi_break = true;
    v.push_back(base("astar", true, 0.05, 0.10, 0.02, 0.01, 0.03,
                     0.001, 70, 2));
    v.push_back(oopCpp("xalancbmk"));
    v.back().uses_casted_signature = true;
    v.back().ccfi_abi_break = true;
    v.push_back(numeric("milc"));
    v.back().ccfi_x87_sensitive = true;
    v.push_back(numeric("namd", true));
    v.push_back(base("dealII", true, 0.04, 0.20, 0.02, 0.01, 0.05,
                     0.001, 55, 2));
    v.back().ccfi_x87_sensitive = true;
    v.push_back(base("soplex", true, 0.03, 0.12, 0.015, 0.01, 0.04,
                     0.001, 65, 2));
    v.back().ccfi_x87_sensitive = true;
    v.push_back(base("povray", true, 0.30, 0.25, 0.06, 0.02, 0.04,
                     0.001, 30, 3)); // the §5.1 false-positive example
    v.back().uses_casted_signature = true;
    v.back().ccfi_x87_sensitive = true;
    v.back().ccfi_abi_break = true;
    v.push_back(numeric("lbm"));
    v.push_back(base("sphinx3", false, 0.10, 0, 0.03, 0.02, 0.03,
                     0.001, 50, 2));
    v.back().ccfi_x87_sensitive = true;
    v.back().uses_decayed_funcptr = true;

    // ----- SPEC CPU2017 rate (16) ------------------------------------
    v.push_back(ptrHeavyC("perlbench_r"));
    v.back().block_op_allowlist = true;
    v.back().uses_decayed_funcptr = true;
    v.push_back(ptrHeavyC("gcc_r"));
    v.back().heavy_recursion = true;
    v.back().block_op_allowlist = true;
    v.back().uses_casted_signature = true;
    v.push_back(base("mcf_r", false, 0.02, 0, 0.005, 0.005, 0.01,
                     0.001, 90, 1));
    v.push_back(oopCpp("omnetpp_r"));
    v.back().static_init_uaf = true;
    v.back().ccfi_abi_break = true;
    v.push_back(oopCpp("xalancbmk_r"));
    v.back().uses_casted_signature = true;
    v.back().ccfi_abi_break = true;
    v.push_back(integer("x264_r"));
    v.back().uses_decayed_funcptr = true;
    v.push_back(base("deepsjeng_r", true, 0.06, 0.08, 0.02, 0.01, 0.02,
                     0.001, 60, 3));
    v.back().heavy_recursion = true;
    v.back().uses_casted_signature = true;
    v.push_back(oopCpp("leela_r"));
    v.back().ccfi_abi_break = true;
    v.push_back(integer("xz_r"));
    v.back().uses_decayed_funcptr = true;
    v.push_back(numeric("lbm_r"));
    v.push_back(base("imagick_r", false, 0.25, 0, 0.05, 0.04, 0.02,
                     0.001, 45, 2));
    v.back().uses_decayed_funcptr = true;
    v.back().uses_casted_signature = true;
    v.push_back(numeric("nab_r"));
    v.back().ccfi_x87_sensitive = true;
    v.push_back(base("parest_r", true, 0.04, 0.18, 0.02, 0.01, 0.05,
                     0.001, 60, 2));
    v.back().ccfi_x87_sensitive = true;
    v.push_back(base("povray_r", true, 0.30, 0.25, 0.06, 0.02, 0.04,
                     0.001, 30, 3));
    v.back().uses_casted_signature = true;
    v.back().ccfi_x87_sensitive = true;
    v.back().ccfi_abi_break = true;
    v.push_back(base("blender_r", true, 0.35, 0.15, 0.08, 0.03, 0.05,
                     0.001, 35, 2));
    v.back().uses_casted_signature = true;
    v.back().uses_decayed_funcptr = true;
    v.back().ccfi_abi_break = true;
    v.push_back(numeric("namd_r", true));
    v.back().old_llvm_baseline_bug = true; // fails on 3.3/3.4 baselines

    // ----- SPEC CPU2017 speed (12) ------------------------------------
    v.push_back(ptrHeavyC("perlbench_s"));
    v.back().uses_decayed_funcptr = true;
    v.back().ccfi_abi_break = true;
    v.push_back(ptrHeavyC("gcc_s"));
    v.back().heavy_recursion = true;
    v.back().uses_casted_signature = true;
    v.back().ccfi_abi_break = true;
    v.push_back(base("mcf_s", false, 0.02, 0, 0.005, 0.005, 0.01,
                     0.001, 90, 1));
    v.push_back(oopCpp("omnetpp_s"));
    v.back().uses_casted_signature = true;
    v.back().ccfi_abi_break = true;
    v.push_back(oopCpp("xalancbmk_s"));
    v.back().uses_casted_signature = true;
    v.back().ccfi_abi_break = true;
    v.push_back(integer("x264_s"));
    v.back().uses_decayed_funcptr = true;
    v.push_back(base("deepsjeng_s", true, 0.06, 0.08, 0.02, 0.01, 0.02,
                     0.001, 60, 3));
    v.back().heavy_recursion = true;
    v.push_back(oopCpp("leela_s"));
    v.back().uses_casted_signature = true;
    v.push_back(integer("xz_s"));
    v.back().uses_decayed_funcptr = true;
    v.push_back(numeric("lbm_s"));
    v.push_back(base("imagick_s", false, 0.25, 0, 0.05, 0.04, 0.02,
                     0.001, 45, 2));
    v.back().uses_decayed_funcptr = true;
    v.back().uses_casted_signature = true;
    v.push_back(numeric("nab_s"));
    v.back().old_llvm_baseline_bug = true;
    v.back().ccfi_x87_sensitive = true;

    // ----- NGINX ------------------------------------------------------
    SpecProfile nginx = base("nginx", false, 0.7, 0, 0.15, 0.08, 0.10,
                             0.05, 12, 3);
    nginx.name = "nginx";
    v.push_back(nginx);

    return v;
}

} // namespace

const std::vector<SpecProfile> &
specProfiles()
{
    static const std::vector<SpecProfile> kProfiles = buildProfiles();
    return kProfiles;
}

const SpecProfile &
specProfile(const std::string &name)
{
    for (const SpecProfile &profile : specProfiles())
        if (profile.name == name)
            return profile;
    panic("unknown benchmark profile: " + name);
}

} // namespace hq
