/**
 * @file
 * Simulated HerQules kernel module (paper §3.3).
 *
 * The real artifact is a Linux module that intercepts system calls via
 * kprobes/tracepoints and keeps a hash table of per-process contexts.
 * The paper's context holds a boolean synchronization variable: set by
 * the verifier upon receiving the process's System-Call message, reset
 * by the module when the system call resumes. This module generalizes
 * it to a pair of counters (syscalls retired / acks credited) so the
 * same gate expresses the strict boolean contract (speculation window
 * 0), the proactive pre-armed fast path, and bounded speculation up to
 * Config::speculation_window syscalls ahead of verification. If no
 * synchronization message arrives within a configurable epoch, the
 * kernel treats it as a policy violation and terminates the process.
 *
 * Here the interception point is explicit: the VM's syscall handler
 * calls syscallEnter(), which blocks with the same semantics. The
 * verifier talks to the module over the privileged channel modeled by
 * the syscallResume()/killProcess() methods — direct calls that the
 * monitored program has no access to.
 */

#ifndef HQ_KERNEL_KERNEL_H
#define HQ_KERNEL_KERNEL_H

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "common/status.h"
#include "common/types.h"

namespace hq {

/** Observer interface the verifier implements to learn process events. */
class ProcessEventListener
{
  public:
    virtual ~ProcessEventListener() = default;

    /** A process enabled HerQules (registration step 1b in Figure 1). */
    virtual void onProcessEnabled(Pid pid) = 0;

    /** fork/clone: child inherits a copy of the parent's policy context. */
    virtual void onProcessForked(Pid parent, Pid child) = 0;

    /** Process terminated; its policy context is destroyed. */
    virtual void onProcessExited(Pid pid) = 0;

    /**
     * A monitored process trapped into a gated syscall. Fired from the
     * entering thread before the gate check, with no kernel locks
     * held: the listener's chance to drain that pid's backlog while
     * the syscall spins/blocks/yields instead of at its next poll
     * tick. Default no-op; implementations must only touch their own
     * wakeup machinery (the caller is on the monitored hot path).
     */
    virtual void
    onSyscallGate(Pid pid)
    {
        (void)pid;
    }
};

/** Per-process kernel statistics (exposed for tests and harnesses). */
struct KernelProcessStats
{
    std::uint64_t syscalls = 0;       //!< intercepted system calls
    std::uint64_t waits = 0;          //!< syscalls that had to block
    std::uint64_t epoch_timeouts = 0; //!< syncs that timed out
    std::uint64_t spec_syscalls = 0;  //!< retired ahead of their own ack
    std::uint64_t pre_arm_hits = 0;   //!< admissions via a proactive push
    std::uint64_t max_spec_depth = 0; //!< peak unacked retirement depth
};

class KernelModule
{
  public:
    /** Upper bound on Config::speculation_window. */
    static constexpr std::size_t kMaxSpeculationWindow = 64;

    /** Configuration of bounded asynchronous validation. */
    struct Config
    {
        /** Epoch: max wait for the verifier's resume signal. */
        std::chrono::milliseconds epoch{2000};
        /**
         * Spin window before blocking: the pipelined System-Call
         * message is usually processed within the syscall's own entry
         * latency, so a short spin avoids the sleep/wake round trip.
         */
        std::chrono::microseconds spin{50};
        /** Kill the process on policy violation (paper default: yes). */
        bool kill_on_violation = true;
        /**
         * Elide synchronization for read-only system calls (§5.3.3
         * lists this as a potential improvement): syscalls without
         * externally-visible side effects need no pause, because a
         * compromised program cannot use them to attack the system.
         */
        bool elide_readonly_syscalls = false;
        /**
         * Bounded speculation: how many system calls a process may
         * retire ahead of the verifier's acknowledgements. 0 (the
         * default) is the paper's strict gate — every syscall blocks
         * until its own System-Call message is acked. K > 0 trades
         * detection delay for tail latency: the process runs up to K
         * syscalls ahead, and a violation landing inside the window
         * still kills it before syscall K+1 retires (the soundness
         * bound; DESIGN.md §13). Clamped to [0, kMaxSpeculationWindow]
         * at construction, like Verifier::Config::poll_batch.
         * Speculation-barrier syscalls (isSpeculationBarrier) always
         * enforce the strict contract regardless of this setting.
         */
        std::size_t speculation_window = 0;
    };

    /** One coalesced acknowledgement (syscallResumeBatch element). */
    struct SyscallAck
    {
        Pid pid = 0;
        std::uint32_t count = 1; //!< System-Call messages acked
    };

    /** True for syscalls with no externally-visible side effects. */
    static bool isReadOnlySyscall(std::uint64_t sysno);

    /**
     * True for syscalls whose effects cannot be contained by a
     * delayed kill: process-image and control transfers (execve,
     * fork/clone, exit, kill). The gate always enforces the strict
     * ack-before-retire contract for these, regardless of
     * Config::speculation_window — a speculated execve would hand
     * control to a possibly-compromised image the verifier has not
     * cleared yet, voiding the bounded-detection-delay argument.
     */
    static bool isSpeculationBarrier(std::uint64_t sysno);

    KernelModule();
    explicit KernelModule(Config config);

    /** Attach the verifier's event listener (module load order). */
    void setListener(ProcessEventListener *listener);

    /**
     * Detach `listener` iff it is the one currently attached. A dying
     * verifier must use this instead of setListener(nullptr) so it
     * cannot clobber the registration of a replacement verifier that
     * already re-attached (crash-recovery path).
     */
    void clearListener(ProcessEventListener *listener);

    /**
     * Crash recovery: replay every live (non-killed) process to
     * `listener` via onProcessEnabled, so a restarted verifier can
     * rebuild its per-process policy state before it starts polling.
     * Emits a `verifier_restart` event-log record when a log is active.
     * @return number of processes replayed.
     */
    std::size_t replayProcessesTo(ProcessEventListener *listener);

    // --- Process lifecycle (invoked by the monitored runtime) --------

    /** A process enables HerQules during startup (step 1a). */
    Status enableProcess(Pid pid);

    /** fork/clone interception: allocate the child's kernel context. */
    Status forkProcess(Pid parent, Pid child);

    /** exit interception: tear down the kernel context. */
    void exitProcess(Pid pid);

    // --- System-call interception (kprobes analog) -------------------

    /**
     * Pause the process at a system call until the verifier confirms
     * all in-flight messages were processed without violations.
     *
     * @return Ok to resume the syscall; PolicyViolation when the process
     *         was killed or the epoch expired.
     */
    /**
     * @param spin_fast_path spin briefly before sleeping (the pipelined
     *        design's ack usually arrives within the window). The naive
     *        synchronous design always pays the sleep/wake round trip.
     */
    Status syscallEnter(Pid pid, std::uint64_t sysno,
                        bool spin_fast_path = true);

    // --- Privileged verifier channel ---------------------------------

    /** Verifier saw the System-Call message: credit one ack. */
    void syscallResume(Pid pid);

    /**
     * Coalesced epoch acknowledgements: credit every entry's acks,
     * grouped by process-table bucket so a flush costs one lock
     * acquisition per touched bucket instead of one per message.
     * Per-pid ack credit is clamped to (retired syscalls + 1), so a
     * forged flood of System-Call messages can never bank more than
     * the one legitimate pipelined pre-ack.
     */
    void syscallResumeBatch(const SyscallAck *acks, std::size_t n);

    /**
     * Proactive ack push: the verifier fully drained the process's
     * channel with no violation, so the *next* non-barrier
     * syscallEnter() is admitted without blocking even though its own
     * System-Call message has not been verified yet. Grants exactly
     * one admission (consumed on use); re-armed on each full drain.
     */
    void preArmProcess(Pid pid);

    /** Verifier detected a policy violation: terminate the process. */
    void killProcess(Pid pid, const std::string &reason);

    // --- Introspection ------------------------------------------------

    bool isEnabled(Pid pid) const;
    bool isKilled(Pid pid) const;
    KernelProcessStats statsFor(Pid pid) const;
    /** Syscalls retired ahead of their acks right now (0 = in sync). */
    std::uint64_t speculationDepth(Pid pid) const;
    const Config &config() const { return _config; }

  private:
    /** Kernel context for one HerQules-enabled process. */
    struct ProcessContext
    {
        /// Gate entries retired (1-based count of admitted syscalls).
        std::uint64_t sc_gated = 0;
        /// Verifier acks credited. Clamped to sc_gated + 1 on every
        /// resume: the pipelined design legitimately acks one syscall
        /// before its gate entry, but nothing beyond that may bank.
        std::uint64_t sc_acked = 0;
        /// Proactive push: one non-blocking admission of a non-barrier
        /// syscall; consumed on every admission.
        bool pre_armed = false;
        bool killed = false;
        std::string kill_reason;
        KernelProcessStats stats;
        std::condition_variable cv;
    };

    /**
     * Process-table buckets, keyed by the same pid->shard hash the
     * verifier uses (shardIndexFor in verifier/shard.h). With a sharded
     * verifier, epoch acknowledgements and kill_on_violation for one
     * shard's pids land on that shard's buckets only, so shard workers
     * never contend on a single kernel lock (the real module's
     * per-bucket hash-table locking).
     */
    static constexpr std::size_t kBucketCount = 16;

    struct Bucket
    {
        mutable std::mutex mutex;
        // Contexts are shared so a syscallEnter() waiter keeps its
        // context (and condition variable) alive even if exitProcess()
        // races with it.
        std::unordered_map<Pid, std::shared_ptr<ProcessContext>>
            processes;
        /// Stats snapshots of exited processes (harness post-mortem).
        std::unordered_map<Pid, KernelProcessStats> exited_stats;
    };

    Bucket &bucketFor(Pid pid);
    const Bucket &bucketFor(Pid pid) const;

    /** Lookup within one bucket; the caller holds bucket.mutex. */
    static std::shared_ptr<ProcessContext> find(const Bucket &bucket,
                                                Pid pid);

    /** Credit one coalesced ack; the caller holds bucket.mutex. */
    void applyResumeLocked(Bucket &bucket, const SyscallAck &ack);

    Config _config;
    /// Atomic: lifecycle paths read it after dropping the bucket lock,
    /// and a crash-recovery verifier swap must not tear.
    std::atomic<ProcessEventListener *> _listener{nullptr};
    Bucket _buckets[kBucketCount];
};

} // namespace hq

#endif // HQ_KERNEL_KERNEL_H
