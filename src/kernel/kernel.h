/**
 * @file
 * Simulated HerQules kernel module (paper §3.3).
 *
 * The real artifact is a Linux module that intercepts system calls via
 * kprobes/tracepoints and keeps a hash table of per-process contexts,
 * each holding a boolean synchronization variable: set by the verifier
 * upon receiving the process's System-Call message, reset by the module
 * when the system call resumes. If no synchronization message arrives
 * within a configurable epoch, the kernel treats it as a policy
 * violation and terminates the process.
 *
 * Here the interception point is explicit: the VM's syscall handler
 * calls syscallEnter(), which blocks with the same semantics. The
 * verifier talks to the module over the privileged channel modeled by
 * the syscallResume()/killProcess() methods — direct calls that the
 * monitored program has no access to.
 */

#ifndef HQ_KERNEL_KERNEL_H
#define HQ_KERNEL_KERNEL_H

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "common/status.h"
#include "common/types.h"

namespace hq {

/** Observer interface the verifier implements to learn process events. */
class ProcessEventListener
{
  public:
    virtual ~ProcessEventListener() = default;

    /** A process enabled HerQules (registration step 1b in Figure 1). */
    virtual void onProcessEnabled(Pid pid) = 0;

    /** fork/clone: child inherits a copy of the parent's policy context. */
    virtual void onProcessForked(Pid parent, Pid child) = 0;

    /** Process terminated; its policy context is destroyed. */
    virtual void onProcessExited(Pid pid) = 0;
};

/** Per-process kernel statistics (exposed for tests and harnesses). */
struct KernelProcessStats
{
    std::uint64_t syscalls = 0;       //!< intercepted system calls
    std::uint64_t waits = 0;          //!< syscalls that had to block
    std::uint64_t epoch_timeouts = 0; //!< syncs that timed out
};

class KernelModule
{
  public:
    /** Configuration of bounded asynchronous validation. */
    struct Config
    {
        /** Epoch: max wait for the verifier's resume signal. */
        std::chrono::milliseconds epoch{2000};
        /**
         * Spin window before blocking: the pipelined System-Call
         * message is usually processed within the syscall's own entry
         * latency, so a short spin avoids the sleep/wake round trip.
         */
        std::chrono::microseconds spin{50};
        /** Kill the process on policy violation (paper default: yes). */
        bool kill_on_violation = true;
        /**
         * Elide synchronization for read-only system calls (§5.3.3
         * lists this as a potential improvement): syscalls without
         * externally-visible side effects need no pause, because a
         * compromised program cannot use them to attack the system.
         */
        bool elide_readonly_syscalls = false;
    };

    /** True for syscalls with no externally-visible side effects. */
    static bool isReadOnlySyscall(std::uint64_t sysno);

    KernelModule();
    explicit KernelModule(Config config);

    /** Attach the verifier's event listener (module load order). */
    void setListener(ProcessEventListener *listener);

    /**
     * Detach `listener` iff it is the one currently attached. A dying
     * verifier must use this instead of setListener(nullptr) so it
     * cannot clobber the registration of a replacement verifier that
     * already re-attached (crash-recovery path).
     */
    void clearListener(ProcessEventListener *listener);

    /**
     * Crash recovery: replay every live (non-killed) process to
     * `listener` via onProcessEnabled, so a restarted verifier can
     * rebuild its per-process policy state before it starts polling.
     * Emits a `verifier_restart` event-log record when a log is active.
     * @return number of processes replayed.
     */
    std::size_t replayProcessesTo(ProcessEventListener *listener);

    // --- Process lifecycle (invoked by the monitored runtime) --------

    /** A process enables HerQules during startup (step 1a). */
    Status enableProcess(Pid pid);

    /** fork/clone interception: allocate the child's kernel context. */
    Status forkProcess(Pid parent, Pid child);

    /** exit interception: tear down the kernel context. */
    void exitProcess(Pid pid);

    // --- System-call interception (kprobes analog) -------------------

    /**
     * Pause the process at a system call until the verifier confirms
     * all in-flight messages were processed without violations.
     *
     * @return Ok to resume the syscall; PolicyViolation when the process
     *         was killed or the epoch expired.
     */
    /**
     * @param spin_fast_path spin briefly before sleeping (the pipelined
     *        design's ack usually arrives within the window). The naive
     *        synchronous design always pays the sleep/wake round trip.
     */
    Status syscallEnter(Pid pid, std::uint64_t sysno,
                        bool spin_fast_path = true);

    // --- Privileged verifier channel ---------------------------------

    /** Verifier saw the System-Call message: set the sync variable. */
    void syscallResume(Pid pid);

    /** Verifier detected a policy violation: terminate the process. */
    void killProcess(Pid pid, const std::string &reason);

    // --- Introspection ------------------------------------------------

    bool isEnabled(Pid pid) const;
    bool isKilled(Pid pid) const;
    KernelProcessStats statsFor(Pid pid) const;
    const Config &config() const { return _config; }

  private:
    /** Kernel context for one HerQules-enabled process. */
    struct ProcessContext
    {
        bool sync_ok = false; //!< set by verifier, reset on resumption
        bool killed = false;
        std::string kill_reason;
        KernelProcessStats stats;
        std::condition_variable cv;
    };

    /**
     * Process-table buckets, keyed by the same pid->shard hash the
     * verifier uses (shardIndexFor in verifier/shard.h). With a sharded
     * verifier, epoch acknowledgements and kill_on_violation for one
     * shard's pids land on that shard's buckets only, so shard workers
     * never contend on a single kernel lock (the real module's
     * per-bucket hash-table locking).
     */
    static constexpr std::size_t kBucketCount = 16;

    struct Bucket
    {
        mutable std::mutex mutex;
        // Contexts are shared so a syscallEnter() waiter keeps its
        // context (and condition variable) alive even if exitProcess()
        // races with it.
        std::unordered_map<Pid, std::shared_ptr<ProcessContext>>
            processes;
        /// Stats snapshots of exited processes (harness post-mortem).
        std::unordered_map<Pid, KernelProcessStats> exited_stats;
    };

    Bucket &bucketFor(Pid pid);
    const Bucket &bucketFor(Pid pid) const;

    /** Lookup within one bucket; the caller holds bucket.mutex. */
    static std::shared_ptr<ProcessContext> find(const Bucket &bucket,
                                                Pid pid);

    Config _config;
    /// Atomic: lifecycle paths read it after dropping the bucket lock,
    /// and a crash-recovery verifier swap must not tear.
    std::atomic<ProcessEventListener *> _listener{nullptr};
    Bucket _buckets[kBucketCount];
};

} // namespace hq

#endif // HQ_KERNEL_KERNEL_H
