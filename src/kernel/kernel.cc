#include "kernel/kernel.h"

#include <algorithm>
#include <vector>

#include "common/log.h"
#include "faultinject/fault.h"
#include "telemetry/event_log.h"
#include "telemetry/flight_recorder.h"
#include "telemetry/telemetry.h"
#include "telemetry/trace.h"
#include "verifier/shard.h" // shardIndexFor: the verifier's pid hash

namespace hq {

namespace {

HQ_TELEMETRY_HANDLE(syscallPauseHist, Histogram, "kernel.syscall_pause_ns")
HQ_TELEMETRY_HANDLE(syscallsCounter, Counter, "kernel.syscalls")
HQ_TELEMETRY_HANDLE(epochTimeoutsCounter, Counter, "kernel.epoch_timeouts")
// High-water speculation depth (Gauge::set keeps the max): how far
// ahead of verification any process has retired syscalls.
HQ_TELEMETRY_HANDLE(specDepthGauge, Gauge, "kernel.spec_depth")

} // namespace

KernelModule::KernelModule() : KernelModule(Config{}) {}

KernelModule::KernelModule(Config config) : _config(config)
{
    // Clamp at config time, like Verifier::Config::poll_batch: an
    // unbounded window would void the bounded-detection-delay argument
    // (and the soundness tests sweep exactly [0, kMaxSpeculationWindow]).
    _config.speculation_window = std::min<std::size_t>(
        _config.speculation_window, kMaxSpeculationWindow);
}

KernelModule::Bucket &
KernelModule::bucketFor(Pid pid)
{
    return _buckets[shardIndexFor(pid, kBucketCount)];
}

const KernelModule::Bucket &
KernelModule::bucketFor(Pid pid) const
{
    return _buckets[shardIndexFor(pid, kBucketCount)];
}

void
KernelModule::setListener(ProcessEventListener *listener)
{
    _listener.store(listener, std::memory_order_release);
}

void
KernelModule::clearListener(ProcessEventListener *listener)
{
    _listener.compare_exchange_strong(listener, nullptr,
                                      std::memory_order_acq_rel);
}

std::size_t
KernelModule::replayProcessesTo(ProcessEventListener *listener)
{
    if (listener == nullptr)
        return 0;
    std::vector<Pid> live;
    for (const Bucket &bucket : _buckets) {
        std::lock_guard<std::mutex> guard(bucket.mutex);
        for (const auto &[pid, context] : bucket.processes) {
            if (!context->killed)
                live.push_back(pid);
        }
    }
    for (Pid pid : live)
        listener->onProcessEnabled(pid);
    if (telemetry::EventLog::instance().active()) {
        telemetry::EventRecord record;
        record.type = telemetry::EventType::VerifierRestart;
        record.arg0 = live.size();
        record.reason = "verifier re-attached; live processes replayed";
        telemetry::EventLog::instance().append(record);
    }
    logInfo("kernel: replayed ", live.size(),
            " live process(es) to a restarted verifier");
    return live.size();
}

std::shared_ptr<KernelModule::ProcessContext>
KernelModule::find(const Bucket &bucket, Pid pid)
{
    auto it = bucket.processes.find(pid);
    return it == bucket.processes.end() ? nullptr : it->second;
}

Status
KernelModule::enableProcess(Pid pid)
{
    Bucket &bucket = bucketFor(pid);
    {
        std::lock_guard<std::mutex> guard(bucket.mutex);
        if (bucket.processes.count(pid)) {
            return Status::error(StatusCode::AlreadyExists,
                                 "process already enabled");
        }
        bucket.processes[pid] = std::make_shared<ProcessContext>();
    }
    if (ProcessEventListener *listener =
            _listener.load(std::memory_order_acquire))
        listener->onProcessEnabled(pid);
    logDebug("kernel: enabled HQ for pid ", pid);
    return Status::ok();
}

Status
KernelModule::forkProcess(Pid parent, Pid child)
{
    // Parent and child may hash to different buckets: validate the
    // parent under its bucket lock, insert the child under its own.
    // Never hold both (they may be the same mutex).
    {
        Bucket &parent_bucket = bucketFor(parent);
        std::lock_guard<std::mutex> guard(parent_bucket.mutex);
        if (!parent_bucket.processes.count(parent)) {
            return Status::error(StatusCode::NotFound,
                                 "parent not enabled");
        }
    }
    Bucket &child_bucket = bucketFor(child);
    {
        std::lock_guard<std::mutex> guard(child_bucket.mutex);
        if (child_bucket.processes.count(child)) {
            return Status::error(StatusCode::AlreadyExists,
                                 "child pid in use");
        }
        child_bucket.processes[child] =
            std::make_shared<ProcessContext>();
    }
    if (ProcessEventListener *listener =
            _listener.load(std::memory_order_acquire))
        listener->onProcessForked(parent, child);
    return Status::ok();
}

void
KernelModule::exitProcess(Pid pid)
{
    Bucket &bucket = bucketFor(pid);
    {
        std::lock_guard<std::mutex> guard(bucket.mutex);
        auto it = bucket.processes.find(pid);
        if (it == bucket.processes.end())
            return;
        // Wake any waiter before the context disappears, and keep a
        // stats snapshot for post-mortem inspection.
        it->second->killed = true;
        it->second->cv.notify_all();
        bucket.exited_stats[pid] = it->second->stats;
        bucket.processes.erase(it);
    }
    if (ProcessEventListener *listener =
            _listener.load(std::memory_order_acquire))
        listener->onProcessExited(pid);
}

bool
KernelModule::isSpeculationBarrier(std::uint64_t sysno)
{
    switch (sysno) {
      case 56:  // clone
      case 57:  // fork
      case 58:  // vfork
      case 59:  // execve
      case 60:  // exit
      case 62:  // kill
      case 231: // exit_group
      case 322: // execveat
        return true;
      default:
        return false;
    }
}

bool
KernelModule::isReadOnlySyscall(std::uint64_t sysno)
{
    switch (sysno) {
      case 39:  // getpid
      case 63:  // uname
      case 79:  // getcwd
      case 96:  // gettimeofday
      case 102: // getuid
      case 110: // getppid
      case 186: // gettid
      case 228: // clock_gettime
      case 318: // getrandom
        return true;
      default:
        return false;
    }
}

Status
KernelModule::syscallEnter(Pid pid, std::uint64_t sysno,
                           bool spin_fast_path)
{
    if (_config.elide_readonly_syscalls && isReadOnlySyscall(sysno))
        return Status::ok(); // no pause needed: no external side effects

    // Kick the verifier before gating: the System-Call message is
    // already in the ring, and waking its consumer now (rather than at
    // the consumer's next poll tick) is what keeps the ack pipeline
    // ahead of the gate. No kernel locks are held yet.
    if (ProcessEventListener *listener =
            _listener.load(std::memory_order_acquire))
        listener->onSyscallGate(pid);

    Bucket &bucket = bucketFor(pid);
    std::unique_lock<std::mutex> lock(bucket.mutex);
    std::shared_ptr<ProcessContext> context = find(bucket, pid);
    if (!context) {
        // Process never enabled HerQules: the module does not intercept.
        return Status::ok();
    }
    ++context->stats.syscalls;

    // Bounded-asynchronous-validation pause latency (the paper's key
    // kernel-side metric): everything from interception to resumption,
    // spin window and sleep included.
    telemetry::ScopedTimer pause_timer(syscallPauseHist());
    telemetry::TraceScope pause_scope("kernel.syscall_pause");
    if (telemetry::enabled())
        syscallsCounter().inc();

    if (context->killed) {
        return Status::error(StatusCode::PolicyViolation,
                             context->kill_reason.empty()
                                 ? "process killed"
                                 : context->kill_reason);
    }

    // This syscall's 1-based gate index, and the ack credit that must
    // have arrived before it may retire. Strict gating (window 0)
    // demands the ack for this very syscall's System-Call message; a
    // window of K lets the process run up to K syscalls ahead.
    // Barrier syscalls (execve/fork/exit-class) are always strict, and
    // the proactive pre-arm never applies to them either: their
    // effects cannot be contained by a delayed kill.
    const std::uint64_t entry = context->sc_gated + 1;
    const bool barrier = isSpeculationBarrier(sysno);
    const std::uint64_t window =
        barrier ? 0 : _config.speculation_window;
    const std::uint64_t required = entry > window ? entry - window : 0;
    const auto admissible = [&context, required, barrier] {
        return context->sc_acked >= required ||
               (!barrier && context->pre_armed);
    };

    if (spin_fast_path && !admissible() && !context->killed) {
        // Fast path: spin briefly — the verifier normally consumes the
        // pipelined System-Call message within this window (§2.2).
        const auto spin_deadline =
            std::chrono::steady_clock::now() + _config.spin;
        while (!admissible() && !context->killed &&
               std::chrono::steady_clock::now() < spin_deadline) {
            lock.unlock();
            std::this_thread::yield();
            lock.lock();
        }
    }

    if (!admissible() && !context->killed) {
        ++context->stats.waits;
        auto epoch = _config.epoch;
        if (faultinject::fire(faultinject::Site::KernelEpochDelay)) {
            // Epoch advance delayed by one extra period: denial still
            // happens, just later — fail closed is preserved.
            epoch += _config.epoch;
        }
        if (faultinject::fire(faultinject::Site::KernelSpuriousWake)) {
            // One predicate-less wait models a spurious wakeup; the
            // predicate wait below re-checks and re-blocks, so a
            // spurious wake must never turn into a spurious resume.
            context->cv.wait_for(lock, std::chrono::microseconds(100));
        }
        const bool signalled = context->cv.wait_for(
            lock, epoch,
            [&admissible, &context] {
                return admissible() || context->killed;
            });
        if (!signalled) {
            // No synchronization message within the epoch: treat as a
            // policy violation and terminate the monitored program.
            ++context->stats.epoch_timeouts;
            if (telemetry::enabled())
                epochTimeoutsCounter().inc();
            if (telemetry::EventLog::instance().active()) {
                telemetry::EventRecord record;
                record.type = telemetry::EventType::EpochTimeout;
                record.pid = pid;
                record.op = "Syscall";
                record.arg0 = static_cast<std::uint64_t>(sysno);
                record.reason = "synchronization epoch expired";
                telemetry::EventLog::instance().append(record);
            }
            context->killed = true;
            context->kill_reason = "synchronization epoch expired";
            telemetry::flight::record(
                telemetry::flight::Subsystem::Kernel,
                telemetry::flight::Code::EpochTimeout, pid, -1,
                static_cast<std::uint64_t>(
                    std::chrono::duration_cast<std::chrono::nanoseconds>(
                        epoch)
                        .count()),
                static_cast<std::uint64_t>(sysno));
            telemetry::flight::requestDump("epoch timeout");
            logWarn("kernel: epoch expired for pid ", pid, " at syscall ",
                    sysno);
            return Status::error(StatusCode::PolicyViolation,
                                 context->kill_reason);
        }
    }

    if (context->killed) {
        return Status::error(StatusCode::PolicyViolation,
                             context->kill_reason.empty()
                                 ? "process killed"
                                 : context->kill_reason);
    }

    // Retire the gate entry (the strict contract's "reset the
    // synchronization variable upon resumption", §3.3). A pre-arm is
    // consumed by the admission it enabled; an admission already
    // covered by acks leaves it standing for the next syscall — the
    // credit is one admission total either way (the documented
    // speculation_window=1 equivalence), and kill/violation still
    // closes the gate ahead of it.
    context->sc_gated = entry;
    const bool via_pre_arm = context->sc_acked < required;
    if (via_pre_arm) {
        context->pre_armed = false;
        ++context->stats.pre_arm_hits;
    }
    if (context->sc_acked < entry) {
        // Retiring ahead of this syscall's own ack: bounded speculation
        // (or a proactive push). Track the depth — it is exactly the
        // detection delay a late violation would have enjoyed.
        const std::uint64_t depth = entry - context->sc_acked;
        ++context->stats.spec_syscalls;
        context->stats.max_spec_depth =
            std::max(context->stats.max_spec_depth, depth);
        if (telemetry::enabled())
            specDepthGauge().set(depth);
    }

    // The gate is open and the syscall proceeds into the (simulated)
    // kernel. A real trap is a scheduling point, so model it: on a
    // loaded or single-CPU host this is where the verifier thread gets
    // cycles to drain the pipelined backlog concurrently with the
    // syscall body, rather than only when the gate blocks. The pause
    // histogram above covers gate-blocked time only — the trap itself
    // costs the same in every gating mode.
    pause_timer.stop();
    lock.unlock();
    std::this_thread::yield();
    return Status::ok();
}

void
KernelModule::applyResumeLocked(Bucket &bucket, const SyscallAck &ack)
{
    if (faultinject::fire(faultinject::Site::KernelLostNotify)) {
        // The verifier's resume never reaches the waiter: the paused
        // syscall must eventually hit the epoch timeout (fail closed).
        logDebug("kernel: injected lost notification for pid ", ack.pid);
        return;
    }
    std::shared_ptr<ProcessContext> context = find(bucket, ack.pid);
    if (!context)
        return;
    // Clamp the credit to one pipelined pre-ack beyond what has
    // retired: the verifier acks at most one System-Call message per
    // gate entry, so anything past sc_gated + 1 is a forged flood
    // trying to bank admissions.
    context->sc_acked = std::min<std::uint64_t>(
        context->sc_acked + ack.count, context->sc_gated + 1);
    telemetry::flight::record(telemetry::flight::Subsystem::Kernel,
                              telemetry::flight::Code::SyscallResume,
                              ack.pid, -1, ack.count, context->sc_acked);
    context->cv.notify_all();
}

void
KernelModule::syscallResume(Pid pid)
{
    const SyscallAck ack{pid, 1};
    syscallResumeBatch(&ack, 1);
}

void
KernelModule::syscallResumeBatch(const SyscallAck *acks, std::size_t n)
{
    // Group by process-table bucket: one lock acquisition per touched
    // bucket per flush, however many pids/messages the batch carries.
    for (std::size_t b = 0; b < kBucketCount; ++b) {
        std::size_t i = 0;
        while (i < n && shardIndexFor(acks[i].pid, kBucketCount) != b)
            ++i;
        if (i == n)
            continue;
        Bucket &bucket = _buckets[b];
        std::lock_guard<std::mutex> guard(bucket.mutex);
        for (; i < n; ++i) {
            if (shardIndexFor(acks[i].pid, kBucketCount) == b)
                applyResumeLocked(bucket, acks[i]);
        }
    }
}

void
KernelModule::preArmProcess(Pid pid)
{
    Bucket &bucket = bucketFor(pid);
    std::lock_guard<std::mutex> guard(bucket.mutex);
    std::shared_ptr<ProcessContext> context = find(bucket, pid);
    if (!context || context->killed)
        return;
    context->pre_armed = true;
    context->cv.notify_all();
}

void
KernelModule::killProcess(Pid pid, const std::string &reason)
{
    Bucket &bucket = bucketFor(pid);
    std::lock_guard<std::mutex> guard(bucket.mutex);
    std::shared_ptr<ProcessContext> context = find(bucket, pid);
    if (!context)
        return;
    context->killed = true;
    context->kill_reason = reason;
    // A kill landing while the process ran ahead of verification is
    // the bounded detection delay made visible: audit the in-window
    // depth so operators can see how far the program got.
    const std::uint64_t depth = context->sc_gated > context->sc_acked
                                    ? context->sc_gated - context->sc_acked
                                    : 0;
    if (depth > 0 && telemetry::EventLog::instance().active()) {
        telemetry::EventRecord record;
        record.type = telemetry::EventType::SpecKill;
        record.pid = pid;
        record.op = "Syscall";
        record.arg0 = depth;
        record.arg1 = _config.speculation_window;
        record.reason = reason;
        telemetry::EventLog::instance().append(record);
    }
    telemetry::flight::record(telemetry::flight::Subsystem::Kernel,
                              telemetry::flight::Code::ProcessKilled, pid,
                              -1, depth);
    context->cv.notify_all();
}

bool
KernelModule::isEnabled(Pid pid) const
{
    const Bucket &bucket = bucketFor(pid);
    std::lock_guard<std::mutex> guard(bucket.mutex);
    return find(bucket, pid) != nullptr;
}

bool
KernelModule::isKilled(Pid pid) const
{
    const Bucket &bucket = bucketFor(pid);
    std::lock_guard<std::mutex> guard(bucket.mutex);
    std::shared_ptr<ProcessContext> context = find(bucket, pid);
    return context && context->killed;
}

std::uint64_t
KernelModule::speculationDepth(Pid pid) const
{
    const Bucket &bucket = bucketFor(pid);
    std::lock_guard<std::mutex> guard(bucket.mutex);
    std::shared_ptr<ProcessContext> context = find(bucket, pid);
    return context && context->sc_gated > context->sc_acked
               ? context->sc_gated - context->sc_acked
               : 0;
}

KernelProcessStats
KernelModule::statsFor(Pid pid) const
{
    const Bucket &bucket = bucketFor(pid);
    std::lock_guard<std::mutex> guard(bucket.mutex);
    std::shared_ptr<ProcessContext> context = find(bucket, pid);
    if (context)
        return context->stats;
    auto it = bucket.exited_stats.find(pid);
    return it == bucket.exited_stats.end() ? KernelProcessStats{}
                                           : it->second;
}

} // namespace hq
