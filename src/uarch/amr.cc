#include "uarch/amr.h"

namespace hq {

Amr::Amr(std::size_t capacity_messages, Addr virtual_base)
    : _ring(capacity_messages),
      _capacity(_ring.capacity()),
      _virtual_base(virtual_base),
      _max_append_addr(virtual_base + _capacity * sizeof(Message))
{
}

AppendResult
Amr::appendWrite(const Message &message)
{
    // The hardware comparator checks AppendAddr < MaxAppendAddr; in this
    // model the ring-full condition is the equivalent exhaustion test
    // (the kernel recycles the region by resetting registers once read).
    if (!_ring.tryPush(message))
        return AppendResult::Full;
    _appended.fetch_add(1, std::memory_order_relaxed);
    return AppendResult::Ok;
}

bool
Amr::tryRead(Message &out)
{
    return _ring.tryPop(out);
}

std::size_t
Amr::tryReadBatch(Message *out, std::size_t max_count)
{
    return _ring.tryPopBatch(out, max_count);
}

bool
Amr::resetRegisters()
{
    if (_ring.size() != 0)
        return false;
    _reg_epoch_base.store(_appended.load(std::memory_order_relaxed),
                          std::memory_order_relaxed);
    return true;
}

Addr
Amr::appendAddr() const
{
    const std::uint64_t appended =
        _appended.load(std::memory_order_relaxed);
    const std::uint64_t base =
        _reg_epoch_base.load(std::memory_order_relaxed);
    const std::uint64_t in_epoch = appended - base;
    return _virtual_base + (in_epoch % _capacity) * sizeof(Message);
}

} // namespace hq
