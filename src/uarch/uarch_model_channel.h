/**
 * @file
 * AppendWrite-µarch software model — the "-MODEL" channel (paper §5.3.1).
 *
 * The paper's HQ-CFI-*-MODEL variant models the proposed ISA extension in
 * software: on each AppendWrite it "fetches, checks, and increments an
 * AppendAddr variable in shared memory, and waits for the verifier if the
 * message buffer is full". It lacks hardware enforcement of append-only
 * pages (and therefore should not be deployed), but gives a lower-bound
 * estimate of real AppendWrite-µarch performance.
 */

#ifndef HQ_UARCH_UARCH_MODEL_CHANNEL_H
#define HQ_UARCH_UARCH_MODEL_CHANNEL_H

#include "ipc/channel.h"
#include "uarch/amr.h"

namespace hq {

class UarchModelChannel : public Channel
{
  public:
    explicit UarchModelChannel(std::size_t capacity);

    /**
     * Software AppendWrite: bounds-check AppendAddr, copy the message,
     * auto-increment; spin-wait for the verifier when the AMR is full
     * (the modeled kernel fault handler).
     */
    Status sendImpl(const Message &message) override;

    bool tryRecv(Message &out) override;
    std::size_t tryRecvBatch(Message *out, std::size_t max_count) override;
    std::size_t pending() const override { return _amr.pending(); }
    const ChannelTraits &traits() const override { return _traits; }

    /** The underlying appendable memory region (for register inspection). */
    const Amr &amr() const { return _amr; }

  private:
    Amr _amr;
    ChannelTraits _traits;
};

} // namespace hq

#endif // HQ_UARCH_UARCH_MODEL_CHANNEL_H
