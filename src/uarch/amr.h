/**
 * @file
 * Appendable Memory Region (AMR) — architectural state of the
 * AppendWrite-µarch ISA extension (paper §2.3.2, §3.1.2).
 *
 * The extension adds two privileged per-core registers, AppendAddr and
 * MaxAppendAddr, naming the virtual addresses of the next and
 * one-past-the-end message slots of the AMR. Userspace executes the
 * AppendWrite instruction with a pointer to a fixed-size message; the
 * processor copies the message to *AppendAddr and auto-increments the
 * register, or faults to the kernel when the region is exhausted. Other
 * unprivileged writes to AMR pages are rejected by the MMU.
 *
 * This model keeps the register semantics explicit (byte-granularity
 * AppendAddr within a virtual window) while backing storage with a
 * lock-free SPSC ring: the paper assigns one AMR per writer core with a
 * single reader core, which is exactly the SPSC discipline. The kernel
 * fault handler is modeled by the Full result; the software MODEL channel
 * resolves it by waiting for the verifier to drain the region, as the
 * paper's HQ-CFI-*-MODEL variant does.
 */

#ifndef HQ_UARCH_AMR_H
#define HQ_UARCH_AMR_H

#include <atomic>
#include <cstddef>

#include "common/types.h"
#include "ipc/message.h"
#include "ipc/spsc_ring.h"

namespace hq {

/** Outcome of one AppendWrite instruction. */
enum class AppendResult {
    Ok,    //!< message copied, AppendAddr advanced
    Full,  //!< AppendAddr would exceed MaxAppendAddr: fault to kernel
};

/** One appendable memory region with its per-core register pair. */
class Amr
{
  public:
    /**
     * @param capacity_messages number of message slots in the region
     * @param virtual_base      modeled virtual address of the region
     */
    explicit Amr(std::size_t capacity_messages,
                 Addr virtual_base = 0x7f0000000000ULL);

    /**
     * Execute the AppendWrite instruction: bounds-check against
     * MaxAppendAddr, copy the message, auto-increment AppendAddr.
     */
    AppendResult appendWrite(const Message &message);

    /** Reader-core receive; @return true when a message was dequeued. */
    bool tryRead(Message &out);

    /** Reader-core bulk receive of up to max_count messages in order. */
    std::size_t tryReadBatch(Message *out, std::size_t max_count);

    /**
     * Kernel fault-handler action: reset the register pair to reuse the
     * region. Only legal once the reader has drained all messages.
     * @return false when messages are still pending.
     */
    bool resetRegisters();

    /** Value of the (privileged) AppendAddr register. */
    Addr appendAddr() const;

    /** Value of the (privileged) MaxAppendAddr register. */
    Addr maxAppendAddr() const { return _max_append_addr; }

    /** Messages appended but not yet read. */
    std::size_t pending() const { return _ring.size(); }

    std::size_t capacityMessages() const { return _capacity; }

  private:
    SpscRing _ring;
    const std::size_t _capacity;
    const Addr _virtual_base;
    const Addr _max_append_addr;
    /// Total messages ever appended; AppendAddr is derived from it so the
    /// register value reflects the architectural auto-increment.
    std::atomic<std::uint64_t> _appended{0};
    std::atomic<std::uint64_t> _reg_epoch_base{0};
};

} // namespace hq

#endif // HQ_UARCH_AMR_H
