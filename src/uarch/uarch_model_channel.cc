#include "uarch/uarch_model_channel.h"

#include <thread>

namespace hq {

UarchModelChannel::UarchModelChannel(std::size_t capacity)
    : _amr(capacity),
      _traits{"AppendWrite-uarch (MODEL)", /*appendOnly=*/true,
              /*asyncValidation=*/true, "Mem. Write"}
{
}

Status
UarchModelChannel::sendImpl(const Message &message)
{
    while (_amr.appendWrite(message) == AppendResult::Full) {
        // Modeled fault to the kernel: the region is exhausted, so wait
        // for the verifier (reader core) to drain it.
        std::this_thread::yield();
    }
    return Status::ok();
}

bool
UarchModelChannel::tryRecv(Message &out)
{
    return _amr.tryRead(out);
}

std::size_t
UarchModelChannel::tryRecvBatch(Message *out, std::size_t max_count)
{
    return _amr.tryReadBatch(out, max_count);
}

} // namespace hq
