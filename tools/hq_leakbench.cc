/**
 * @file
 * LeakBench CLI: run the data-only attack corpus under both policy
 * suites and print the verdict table as JSON lines, one row per
 * scenario. CI's `policy-parity` step runs this at every {shards} x
 * {format} combination and diffs the tables field by field — verdicts
 * must not depend on how the verifier is sharded or how the messages
 * travel.
 *
 *   hq_leakbench --shards=4 --format=v2 [--var-records]
 */

#include <cstdio>
#include <cstring>
#include <string>

#include "workloads/leakbench.h"

using namespace hq;

int
main(int argc, char **argv)
{
    std::size_t shards = 1;
    WireFormat format = WireFormat::V1;
    bool var_records = false;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("--shards=", 0) == 0) {
            shards = static_cast<std::size_t>(
                std::strtoul(arg.c_str() + 9, nullptr, 10));
        } else if (arg == "--format=v1") {
            format = WireFormat::V1;
        } else if (arg == "--format=v2") {
            format = WireFormat::V2;
        } else if (arg == "--var-records") {
            var_records = true;
        } else {
            std::fprintf(stderr,
                         "usage: %s [--shards=N] [--format=v1|v2] "
                         "[--var-records]\n",
                         argv[0]);
            return 2;
        }
    }
    if (shards == 0 || (var_records && format != WireFormat::V2)) {
        std::fprintf(stderr, "invalid flag combination\n");
        return 2;
    }

    int corpus_failures = 0;
    for (LeakScenario scenario : leakScenarioSuite()) {
        const LeakResult cfi = runLeakAttack(
            scenario, PolicySuite::CfiOnly, shards, format, var_records);
        const LeakResult ifc = runLeakAttack(
            scenario, PolicySuite::CfiPlusIfc, shards, format,
            var_records);
        // The corpus contract, independent of the parity diff.
        if (!cfi.leaked || cfi.detected || ifc.leaked || !ifc.detected)
            ++corpus_failures;
        std::printf("{\"scenario\":\"%s\",\"cfi_leaked\":%s,"
                    "\"cfi_detected\":%s,\"ifc_leaked\":%s,"
                    "\"ifc_detected\":%s,\"ifc_violations\":%llu}\n",
                    leakScenarioName(scenario),
                    cfi.leaked ? "true" : "false",
                    cfi.detected ? "true" : "false",
                    ifc.leaked ? "true" : "false",
                    ifc.detected ? "true" : "false",
                    static_cast<unsigned long long>(ifc.ifc_violations));
    }
    if (corpus_failures != 0) {
        std::fprintf(stderr, "%d scenario(s) broke the accept/deny "
                             "contract\n",
                     corpus_failures);
        return 1;
    }
    return 0;
}
