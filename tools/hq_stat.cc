/**
 * @file
 * hq_stat: live statsboard viewer.
 *
 * Attaches read-only to the shared-memory statsboard segment a running
 * HerQules process publishes (`--statsboard` flag; segment
 * /hq_stats.<pid> under /dev/shm) and renders its metrics without
 * perturbing the publisher: readers take no locks, only seqlock-retried
 * copies of a snapshot the publisher refreshes a few times per second.
 *
 * Usage:
 *   hq_stat                  attach to the only running board (or list)
 *   hq_stat --board=NAME     attach to a specific segment (e.g.
 *                            /hq_stats.1234 or hq_stats.1234)
 *   hq_stat --list           list discoverable live boards and exit
 *   hq_stat --json           dump one snapshot as JSON and exit
 *   hq_stat --watch[=MS]     top-style live view (default 1000 ms)
 *   hq_stat --prom[=FILE]    fleet mode: aggregate every live board
 *                            into one Prometheus text-exposition
 *                            snapshot (pid label per process), written
 *                            to FILE (node-exporter textfile collector)
 *                            or stdout
 *   hq_stat --prune          unlink orphaned segments whose publishing
 *                            process is dead, then exit
 */

#include <dirent.h>
#include <signal.h>
#include <sys/mman.h>

#include <cerrno>
#include <cinttypes>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "telemetry/statsboard.h"
#include "telemetry/telemetry.h"

using hq::telemetry::BoardCounter;
using hq::telemetry::BoardGauge;
using hq::telemetry::BoardHistogram;
using hq::telemetry::StatsBoardReader;
using hq::telemetry::StatsBoardSnapshot;

namespace {

volatile std::sig_atomic_t g_stop = 0;

void
onSignal(int)
{
    g_stop = 1;
}

/** Discoverable statsboard segments, as shm names ("/hq_stats.<pid>"). */
std::vector<std::string>
discoverBoards()
{
    std::vector<std::string> boards;
    DIR *dir = ::opendir("/dev/shm");
    if (dir == nullptr)
        return boards;
    while (const dirent *entry = ::readdir(dir)) {
        if (std::strncmp(entry->d_name, "hq_stats.", 9) == 0)
            boards.push_back(std::string("/") + entry->d_name);
    }
    ::closedir(dir);
    return boards;
}

/** Publishing pid encoded in a segment name ("/hq_stats.<pid>"); 0 when
 *  the suffix is not numeric. */
std::int32_t
boardPidFromName(const std::string &name)
{
    const std::size_t dot = name.rfind('.');
    if (dot == std::string::npos || dot + 1 >= name.size())
        return 0;
    char *end = nullptr;
    const long pid = std::strtol(name.c_str() + dot + 1, &end, 10);
    if (end == nullptr || *end != '\0' || pid <= 0)
        return 0;
    return static_cast<std::int32_t>(pid);
}

/** True when `pid` still exists (EPERM counts: alive but foreign). */
bool
pidAlive(std::int32_t pid)
{
    if (pid <= 0)
        return false;
    return ::kill(pid, 0) == 0 || errno == EPERM;
}

/** Live boards only: the publisher encodes its pid in the segment name
 *  (and in the region header), so a dead owner marks an orphan left by
 *  a crash — skip it rather than reporting stale metrics. */
std::vector<std::string>
discoverLiveBoards()
{
    std::vector<std::string> live;
    for (const std::string &name : discoverBoards()) {
        if (pidAlive(boardPidFromName(name)))
            live.push_back(name);
    }
    return live;
}

/** --prune: unlink segments whose publishing process is dead. */
int
pruneBoards()
{
    int pruned = 0;
    for (const std::string &name : discoverBoards()) {
        const std::int32_t pid = boardPidFromName(name);
        if (pidAlive(pid))
            continue;
        if (::shm_unlink(name.c_str()) == 0) {
            std::printf("pruned %s (pid %d dead)\n", name.c_str(), pid);
            ++pruned;
        } else {
            std::fprintf(stderr, "hq_stat: cannot unlink %s: %s\n",
                         name.c_str(), std::strerror(errno));
        }
    }
    std::printf("%d orphaned board(s) pruned\n", pruned);
    return 0;
}

const BoardCounter *
findCounter(const StatsBoardSnapshot &snap, const char *name)
{
    for (std::uint32_t i = 0; i < snap.n_counters; ++i)
        if (std::strcmp(snap.counters[i].name, name) == 0)
            return &snap.counters[i];
    return nullptr;
}

const BoardGauge *
findGauge(const StatsBoardSnapshot &snap, const char *name)
{
    for (std::uint32_t i = 0; i < snap.n_gauges; ++i)
        if (std::strcmp(snap.gauges[i].name, name) == 0)
            return &snap.gauges[i];
    return nullptr;
}

const BoardHistogram *
findHistogram(const StatsBoardSnapshot &snap, const char *name)
{
    for (std::uint32_t i = 0; i < snap.n_histograms; ++i)
        if (std::strcmp(snap.histograms[i].name, name) == 0)
            return &snap.histograms[i];
    return nullptr;
}

std::uint64_t
counterValue(const StatsBoardSnapshot &snap, const char *name)
{
    const BoardCounter *c = findCounter(snap, name);
    return c ? c->value : 0;
}

/** Render nanoseconds with an adaptive unit (ns/us/ms/s). */
std::string
fmtNs(double ns)
{
    char buf[32];
    if (ns < 1e3)
        std::snprintf(buf, sizeof buf, "%.0fns", ns);
    else if (ns < 1e6)
        std::snprintf(buf, sizeof buf, "%.1fus", ns / 1e3);
    else if (ns < 1e9)
        std::snprintf(buf, sizeof buf, "%.2fms", ns / 1e6);
    else
        std::snprintf(buf, sizeof buf, "%.2fs", ns / 1e9);
    return buf;
}

void
printJson(const StatsBoardSnapshot &snap, std::int32_t pid)
{
    std::printf("{\"pid\":%d,\"publish_ns\":%" PRIu64
                ",\"wall_ms\":%" PRIu64 ",\"counters\":{",
                pid, snap.publish_ns, snap.wall_ms);
    for (std::uint32_t i = 0; i < snap.n_counters; ++i)
        std::printf("%s\"%s\":%" PRIu64, i ? "," : "",
                    snap.counters[i].name, snap.counters[i].value);
    std::printf("},\"gauges\":{");
    for (std::uint32_t i = 0; i < snap.n_gauges; ++i)
        std::printf("%s\"%s\":{\"value\":%" PRIu64 ",\"max\":%" PRIu64 "}",
                    i ? "," : "", snap.gauges[i].name,
                    snap.gauges[i].value, snap.gauges[i].max);
    std::printf("},\"histograms\":{");
    for (std::uint32_t i = 0; i < snap.n_histograms; ++i) {
        const BoardHistogram &h = snap.histograms[i];
        std::printf("%s\"%s\":{\"count\":%" PRIu64
                    ",\"mean\":%.1f,\"min\":%.1f,\"max\":%.1f,"
                    "\"p50\":%.1f,\"p90\":%.1f,\"p99\":%.1f}",
                    i ? "," : "", h.name, h.count, h.mean, h.min, h.max,
                    h.p50, h.p90, h.p99);
    }
    std::printf("}}\n");
}

void
printFull(const StatsBoardSnapshot &snap, std::int32_t pid)
{
    std::printf("statsboard pid %d (published %" PRIu64 " ms wall)\n",
                pid, snap.wall_ms);
    std::printf("%-36s %15s\n", "counter", "value");
    for (std::uint32_t i = 0; i < snap.n_counters; ++i)
        std::printf("%-36s %15" PRIu64 "\n", snap.counters[i].name,
                    snap.counters[i].value);
    std::printf("\n%-36s %15s %15s\n", "gauge", "value", "max");
    for (std::uint32_t i = 0; i < snap.n_gauges; ++i)
        std::printf("%-36s %15" PRIu64 " %15" PRIu64 "\n",
                    snap.gauges[i].name, snap.gauges[i].value,
                    snap.gauges[i].max);
    std::printf("\n%-36s %12s %10s %10s %10s %10s\n", "histogram",
                "count", "mean", "p50", "p90", "p99");
    for (std::uint32_t i = 0; i < snap.n_histograms; ++i) {
        const BoardHistogram &h = snap.histograms[i];
        std::printf("%-36s %12" PRIu64 " %10s %10s %10s %10s\n", h.name,
                    h.count, fmtNs(h.mean).c_str(), fmtNs(h.p50).c_str(),
                    fmtNs(h.p90).c_str(), fmtNs(h.p99).c_str());
    }
}

/** One refresh of the --watch dashboard. */
void
printWatch(const StatsBoardSnapshot &snap, const StatsBoardSnapshot &prev,
           bool have_prev, std::int32_t pid)
{
    // ANSI clear + home; keeps the view top-style without curses.
    std::printf("\033[2J\033[H");
    std::printf("hq_stat -- pid %d -- wall %" PRIu64 " ms\n\n", pid,
                snap.wall_ms);

    const std::uint64_t msgs = counterValue(snap, "verifier.messages");
    double rate = 0;
    if (have_prev && snap.wall_ms > prev.wall_ms) {
        const std::uint64_t prev_msgs =
            counterValue(prev, "verifier.messages");
        rate = 1000.0 * static_cast<double>(msgs - prev_msgs) /
               static_cast<double>(snap.wall_ms - prev.wall_ms);
    }
    std::printf("  throughput     %12.0f msg/s   (total %" PRIu64 ")\n",
                rate, msgs);

    if (const BoardHistogram *lag = findHistogram(snap, "verifier.lag_ns"))
        std::printf("  verif. lag     p50 %s  p90 %s  p99 %s  (n=%" PRIu64
                    ")\n",
                    fmtNs(lag->p50).c_str(), fmtNs(lag->p90).c_str(),
                    fmtNs(lag->p99).c_str(), lag->count);
    if (const BoardGauge *hw = findGauge(snap, "verifier.lag_high_water_ns"))
        std::printf("  lag high-water %s   SLO breaches %" PRIu64 "\n",
                    fmtNs(static_cast<double>(hw->max)).c_str(),
                    counterValue(snap, "verifier.lag_slo_breaches"));
    if (const BoardHistogram *pause =
            findHistogram(snap, "kernel.syscall_pause_ns"))
        std::printf("  syscall pause  p50 %s  p99 %s  (n=%" PRIu64 ")\n",
                    fmtNs(pause->p50).c_str(), fmtNs(pause->p99).c_str(),
                    pause->count);

    std::printf("  violations     %12" PRIu64 "   epoch timeouts %" PRIu64
                "\n",
                counterValue(snap, "verifier.violations"),
                counterValue(snap, "kernel.epoch_timeouts"));
    std::printf("  stamp drops    %12" PRIu64 "\n\n",
                counterValue(snap, "ipc.lag_stamp_dropped"));

    std::printf("  %-34s %12s %12s\n", "ring occupancy", "now", "max");
    for (std::uint32_t i = 0; i < snap.n_gauges; ++i) {
        const BoardGauge &g = snap.gauges[i];
        if (std::strstr(g.name, "occupancy") == nullptr)
            continue;
        std::printf("  %-34s %12" PRIu64 " %12" PRIu64 "\n", g.name,
                    g.value, g.max);
    }
    std::printf("\n  (q/Ctrl-C to quit)\n");
    std::fflush(stdout);
}

// --- Fleet Prometheus aggregation ------------------------------------

/** Text-exposition builder: one `# TYPE` line per family, every
 *  sample grouped under it (the format requires family grouping). */
struct PromDoc
{
    // family -> (type, sample lines); std::map keeps families sorted.
    // A sample's name may extend its family (summary `_sum`/`_count`
    // ride under the base family's single `# TYPE` line).
    std::map<std::string, std::pair<const char *, std::vector<std::string>>>
        families;

    void
    add(const std::string &family, const char *type,
        const std::string &name, const std::string &labels,
        const std::string &value)
    {
        auto &entry = families[family];
        entry.first = type;
        std::string line = name;
        if (!labels.empty())
            line += "{" + labels + "}";
        line += " " + value;
        entry.second.push_back(std::move(line));
    }

    std::string
    str() const
    {
        std::string out;
        for (const auto &[family, entry] : families) {
            out += "# TYPE " + family + " " +
                   std::string(entry.first) + "\n";
            for (const std::string &line : entry.second)
                out += line + "\n";
        }
        return out;
    }
};

std::string
promU64(std::uint64_t value)
{
    char buf[32];
    std::snprintf(buf, sizeof buf, "%" PRIu64, value);
    return buf;
}

std::string
promF64(double value)
{
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.10g", value);
    return buf;
}

std::string
joinLabels(const std::string &base, const std::string &extra)
{
    if (base.empty())
        return extra;
    if (extra.empty())
        return base;
    return base + "," + extra;
}

/** Fold one board's snapshot into the fleet document, labeling every
 *  series with the publishing pid so per-process streams stay
 *  distinguishable after aggregation. */
void
promAddBoard(PromDoc &doc, const StatsBoardSnapshot &snap,
             std::int32_t pid)
{
    const std::string pid_label = "pid=\"" + std::to_string(pid) + "\"";
    for (std::uint32_t i = 0; i < snap.n_counters; ++i) {
        const auto series =
            hq::telemetry::prometheusSeries(snap.counters[i].name);
        const std::string family = series.name + "_total";
        doc.add(family, "counter", family,
                joinLabels(series.labels, pid_label),
                promU64(snap.counters[i].value));
    }
    for (std::uint32_t i = 0; i < snap.n_gauges; ++i) {
        const auto series =
            hq::telemetry::prometheusSeries(snap.gauges[i].name);
        const std::string labels =
            joinLabels(series.labels, pid_label);
        doc.add(series.name, "gauge", series.name, labels,
                promU64(snap.gauges[i].value));
        doc.add(series.name + "_max", "gauge", series.name + "_max",
                labels, promU64(snap.gauges[i].max));
    }
    for (std::uint32_t i = 0; i < snap.n_histograms; ++i) {
        const BoardHistogram &h = snap.histograms[i];
        const auto series = hq::telemetry::prometheusSeries(h.name);
        const std::string labels =
            joinLabels(series.labels, pid_label);
        if (h.count != 0) {
            doc.add(series.name, "summary", series.name,
                    joinLabels(labels, "quantile=\"0.5\""),
                    promF64(h.p50));
            doc.add(series.name, "summary", series.name,
                    joinLabels(labels, "quantile=\"0.9\""),
                    promF64(h.p90));
            doc.add(series.name, "summary", series.name,
                    joinLabels(labels, "quantile=\"0.99\""),
                    promF64(h.p99));
        }
        doc.add(series.name, "summary", series.name + "_sum", labels,
                promF64(h.mean * static_cast<double>(h.count)));
        doc.add(series.name, "summary", series.name + "_count", labels,
                promU64(h.count));
    }
}

/**
 * Fleet mode: one aggregated snapshot across every live board (or just
 * `board` when given). Written atomically enough for the textfile
 * collector: to a temp file renamed over FILE, or to stdout.
 */
int
promExport(const std::string &board, const std::string &file)
{
    std::vector<std::string> boards;
    if (!board.empty())
        boards.push_back(board);
    else
        boards = discoverLiveBoards();
    if (boards.empty()) {
        std::fprintf(stderr,
                     "hq_stat: no live statsboard segments in /dev/shm "
                     "(run the target with --statsboard)\n");
        return 1;
    }

    PromDoc doc;
    int attached = 0;
    for (const std::string &name : boards) {
        StatsBoardReader reader(name);
        StatsBoardSnapshot snap;
        if (!reader.valid() || !reader.read(snap)) {
            std::fprintf(stderr, "hq_stat: skipping %s (no snapshot)\n",
                         name.c_str());
            continue;
        }
        promAddBoard(doc, snap, reader.pid());
        ++attached;
    }
    if (attached == 0) {
        std::fprintf(stderr, "hq_stat: no board yielded a snapshot\n");
        return 1;
    }
    doc.add("hq_statsboards", "gauge", "hq_statsboards", "",
            promU64(static_cast<std::uint64_t>(attached)));
    const std::string text = doc.str();

    if (file.empty()) {
        std::fwrite(text.data(), 1, text.size(), stdout);
        return 0;
    }
    const std::string tmp = file + ".tmp";
    std::FILE *out = std::fopen(tmp.c_str(), "w");
    if (out == nullptr) {
        std::fprintf(stderr, "hq_stat: cannot write %s: %s\n",
                     tmp.c_str(), std::strerror(errno));
        return 1;
    }
    std::fwrite(text.data(), 1, text.size(), out);
    std::fclose(out);
    if (std::rename(tmp.c_str(), file.c_str()) != 0) {
        std::fprintf(stderr, "hq_stat: cannot rename %s -> %s: %s\n",
                     tmp.c_str(), file.c_str(), std::strerror(errno));
        return 1;
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string board;
    bool json = false;
    bool list = false;
    bool watch = false;
    bool prom = false;
    bool prune = false;
    std::string prom_file;
    long watch_ms = 1000;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("--board=", 0) == 0) {
            board = arg.substr(8);
            if (!board.empty() && board[0] != '/')
                board = "/" + board;
        } else if (arg == "--json") {
            json = true;
        } else if (arg == "--list") {
            list = true;
        } else if (arg == "--prune") {
            prune = true;
        } else if (arg == "--prom") {
            prom = true;
        } else if (arg.rfind("--prom=", 0) == 0) {
            prom = true;
            prom_file = arg.substr(7);
        } else if (arg == "--watch") {
            watch = true;
        } else if (arg.rfind("--watch=", 0) == 0) {
            watch = true;
            watch_ms = std::strtol(arg.c_str() + 8, nullptr, 10);
            if (watch_ms < 50)
                watch_ms = 50;
        } else {
            std::fprintf(stderr,
                         "usage: hq_stat [--board=NAME] [--list] "
                         "[--json] [--watch[=MS]] [--prom[=FILE]] "
                         "[--prune]\n");
            return 2;
        }
    }

    if (prune)
        return pruneBoards();
    if (prom)
        return promExport(board, prom_file);

    const std::vector<std::string> boards = discoverLiveBoards();
    if (list) {
        for (const std::string &name : boards)
            std::printf("%s\n", name.c_str());
        return 0;
    }
    if (board.empty()) {
        if (boards.empty()) {
            std::fprintf(stderr,
                         "hq_stat: no statsboard segments in /dev/shm "
                         "(run the target with --statsboard)\n");
            return 1;
        }
        if (boards.size() > 1) {
            std::fprintf(stderr,
                         "hq_stat: multiple boards; pick one with "
                         "--board=NAME:\n");
            for (const std::string &name : boards)
                std::fprintf(stderr, "  %s\n", name.c_str());
            return 1;
        }
        board = boards.front();
    }

    StatsBoardReader reader(board);
    if (!reader.valid()) {
        std::fprintf(stderr, "hq_stat: cannot attach to %s\n",
                     board.c_str());
        return 1;
    }

    StatsBoardSnapshot snap;
    if (!reader.read(snap)) {
        std::fprintf(stderr, "hq_stat: no consistent snapshot from %s\n",
                     board.c_str());
        return 1;
    }

    if (!watch) {
        if (json)
            printJson(snap, reader.pid());
        else
            printFull(snap, reader.pid());
        return 0;
    }

    std::signal(SIGINT, onSignal);
    std::signal(SIGTERM, onSignal);
    StatsBoardSnapshot prev;
    bool have_prev = false;
    while (!g_stop) {
        if (reader.read(snap)) {
            printWatch(snap, prev, have_prev, reader.pid());
            prev = snap;
            have_prev = true;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(watch_ms));
    }
    std::printf("\n");
    return 0;
}
