/**
 * @file
 * hq_stat: live statsboard viewer.
 *
 * Attaches read-only to the shared-memory statsboard segment a running
 * HerQules process publishes (`--statsboard` flag; segment
 * /hq_stats.<pid> under /dev/shm) and renders its metrics without
 * perturbing the publisher: readers take no locks, only seqlock-retried
 * copies of a snapshot the publisher refreshes a few times per second.
 *
 * Usage:
 *   hq_stat                  attach to the only running board (or list)
 *   hq_stat --board=NAME     attach to a specific segment (e.g.
 *                            /hq_stats.1234 or hq_stats.1234)
 *   hq_stat --list           list discoverable boards and exit
 *   hq_stat --json           dump one snapshot as JSON and exit
 *   hq_stat --watch[=MS]     top-style live view (default 1000 ms)
 */

#include <dirent.h>

#include <cinttypes>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "telemetry/statsboard.h"

using hq::telemetry::BoardCounter;
using hq::telemetry::BoardGauge;
using hq::telemetry::BoardHistogram;
using hq::telemetry::StatsBoardReader;
using hq::telemetry::StatsBoardSnapshot;

namespace {

volatile std::sig_atomic_t g_stop = 0;

void
onSignal(int)
{
    g_stop = 1;
}

/** Discoverable statsboard segments, as shm names ("/hq_stats.<pid>"). */
std::vector<std::string>
discoverBoards()
{
    std::vector<std::string> boards;
    DIR *dir = ::opendir("/dev/shm");
    if (dir == nullptr)
        return boards;
    while (const dirent *entry = ::readdir(dir)) {
        if (std::strncmp(entry->d_name, "hq_stats.", 9) == 0)
            boards.push_back(std::string("/") + entry->d_name);
    }
    ::closedir(dir);
    return boards;
}

const BoardCounter *
findCounter(const StatsBoardSnapshot &snap, const char *name)
{
    for (std::uint32_t i = 0; i < snap.n_counters; ++i)
        if (std::strcmp(snap.counters[i].name, name) == 0)
            return &snap.counters[i];
    return nullptr;
}

const BoardGauge *
findGauge(const StatsBoardSnapshot &snap, const char *name)
{
    for (std::uint32_t i = 0; i < snap.n_gauges; ++i)
        if (std::strcmp(snap.gauges[i].name, name) == 0)
            return &snap.gauges[i];
    return nullptr;
}

const BoardHistogram *
findHistogram(const StatsBoardSnapshot &snap, const char *name)
{
    for (std::uint32_t i = 0; i < snap.n_histograms; ++i)
        if (std::strcmp(snap.histograms[i].name, name) == 0)
            return &snap.histograms[i];
    return nullptr;
}

std::uint64_t
counterValue(const StatsBoardSnapshot &snap, const char *name)
{
    const BoardCounter *c = findCounter(snap, name);
    return c ? c->value : 0;
}

/** Render nanoseconds with an adaptive unit (ns/us/ms/s). */
std::string
fmtNs(double ns)
{
    char buf[32];
    if (ns < 1e3)
        std::snprintf(buf, sizeof buf, "%.0fns", ns);
    else if (ns < 1e6)
        std::snprintf(buf, sizeof buf, "%.1fus", ns / 1e3);
    else if (ns < 1e9)
        std::snprintf(buf, sizeof buf, "%.2fms", ns / 1e6);
    else
        std::snprintf(buf, sizeof buf, "%.2fs", ns / 1e9);
    return buf;
}

void
printJson(const StatsBoardSnapshot &snap, std::int32_t pid)
{
    std::printf("{\"pid\":%d,\"publish_ns\":%" PRIu64
                ",\"wall_ms\":%" PRIu64 ",\"counters\":{",
                pid, snap.publish_ns, snap.wall_ms);
    for (std::uint32_t i = 0; i < snap.n_counters; ++i)
        std::printf("%s\"%s\":%" PRIu64, i ? "," : "",
                    snap.counters[i].name, snap.counters[i].value);
    std::printf("},\"gauges\":{");
    for (std::uint32_t i = 0; i < snap.n_gauges; ++i)
        std::printf("%s\"%s\":{\"value\":%" PRIu64 ",\"max\":%" PRIu64 "}",
                    i ? "," : "", snap.gauges[i].name,
                    snap.gauges[i].value, snap.gauges[i].max);
    std::printf("},\"histograms\":{");
    for (std::uint32_t i = 0; i < snap.n_histograms; ++i) {
        const BoardHistogram &h = snap.histograms[i];
        std::printf("%s\"%s\":{\"count\":%" PRIu64
                    ",\"mean\":%.1f,\"min\":%.1f,\"max\":%.1f,"
                    "\"p50\":%.1f,\"p90\":%.1f,\"p99\":%.1f}",
                    i ? "," : "", h.name, h.count, h.mean, h.min, h.max,
                    h.p50, h.p90, h.p99);
    }
    std::printf("}}\n");
}

void
printFull(const StatsBoardSnapshot &snap, std::int32_t pid)
{
    std::printf("statsboard pid %d (published %" PRIu64 " ms wall)\n",
                pid, snap.wall_ms);
    std::printf("%-36s %15s\n", "counter", "value");
    for (std::uint32_t i = 0; i < snap.n_counters; ++i)
        std::printf("%-36s %15" PRIu64 "\n", snap.counters[i].name,
                    snap.counters[i].value);
    std::printf("\n%-36s %15s %15s\n", "gauge", "value", "max");
    for (std::uint32_t i = 0; i < snap.n_gauges; ++i)
        std::printf("%-36s %15" PRIu64 " %15" PRIu64 "\n",
                    snap.gauges[i].name, snap.gauges[i].value,
                    snap.gauges[i].max);
    std::printf("\n%-36s %12s %10s %10s %10s %10s\n", "histogram",
                "count", "mean", "p50", "p90", "p99");
    for (std::uint32_t i = 0; i < snap.n_histograms; ++i) {
        const BoardHistogram &h = snap.histograms[i];
        std::printf("%-36s %12" PRIu64 " %10s %10s %10s %10s\n", h.name,
                    h.count, fmtNs(h.mean).c_str(), fmtNs(h.p50).c_str(),
                    fmtNs(h.p90).c_str(), fmtNs(h.p99).c_str());
    }
}

/** One refresh of the --watch dashboard. */
void
printWatch(const StatsBoardSnapshot &snap, const StatsBoardSnapshot &prev,
           bool have_prev, std::int32_t pid)
{
    // ANSI clear + home; keeps the view top-style without curses.
    std::printf("\033[2J\033[H");
    std::printf("hq_stat -- pid %d -- wall %" PRIu64 " ms\n\n", pid,
                snap.wall_ms);

    const std::uint64_t msgs = counterValue(snap, "verifier.messages");
    double rate = 0;
    if (have_prev && snap.wall_ms > prev.wall_ms) {
        const std::uint64_t prev_msgs =
            counterValue(prev, "verifier.messages");
        rate = 1000.0 * static_cast<double>(msgs - prev_msgs) /
               static_cast<double>(snap.wall_ms - prev.wall_ms);
    }
    std::printf("  throughput     %12.0f msg/s   (total %" PRIu64 ")\n",
                rate, msgs);

    if (const BoardHistogram *lag = findHistogram(snap, "verifier.lag_ns"))
        std::printf("  verif. lag     p50 %s  p90 %s  p99 %s  (n=%" PRIu64
                    ")\n",
                    fmtNs(lag->p50).c_str(), fmtNs(lag->p90).c_str(),
                    fmtNs(lag->p99).c_str(), lag->count);
    if (const BoardGauge *hw = findGauge(snap, "verifier.lag_high_water_ns"))
        std::printf("  lag high-water %s   SLO breaches %" PRIu64 "\n",
                    fmtNs(static_cast<double>(hw->max)).c_str(),
                    counterValue(snap, "verifier.lag_slo_breaches"));
    if (const BoardHistogram *pause =
            findHistogram(snap, "kernel.syscall_pause_ns"))
        std::printf("  syscall pause  p50 %s  p99 %s  (n=%" PRIu64 ")\n",
                    fmtNs(pause->p50).c_str(), fmtNs(pause->p99).c_str(),
                    pause->count);

    std::printf("  violations     %12" PRIu64 "   epoch timeouts %" PRIu64
                "\n",
                counterValue(snap, "verifier.violations"),
                counterValue(snap, "kernel.epoch_timeouts"));
    std::printf("  stamp drops    %12" PRIu64 "\n\n",
                counterValue(snap, "ipc.lag_stamp_dropped"));

    std::printf("  %-34s %12s %12s\n", "ring occupancy", "now", "max");
    for (std::uint32_t i = 0; i < snap.n_gauges; ++i) {
        const BoardGauge &g = snap.gauges[i];
        if (std::strstr(g.name, "occupancy") == nullptr)
            continue;
        std::printf("  %-34s %12" PRIu64 " %12" PRIu64 "\n", g.name,
                    g.value, g.max);
    }
    std::printf("\n  (q/Ctrl-C to quit)\n");
    std::fflush(stdout);
}

} // namespace

int
main(int argc, char **argv)
{
    std::string board;
    bool json = false;
    bool list = false;
    bool watch = false;
    long watch_ms = 1000;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("--board=", 0) == 0) {
            board = arg.substr(8);
            if (!board.empty() && board[0] != '/')
                board = "/" + board;
        } else if (arg == "--json") {
            json = true;
        } else if (arg == "--list") {
            list = true;
        } else if (arg == "--watch") {
            watch = true;
        } else if (arg.rfind("--watch=", 0) == 0) {
            watch = true;
            watch_ms = std::strtol(arg.c_str() + 8, nullptr, 10);
            if (watch_ms < 50)
                watch_ms = 50;
        } else {
            std::fprintf(stderr,
                         "usage: hq_stat [--board=NAME] [--list] "
                         "[--json] [--watch[=MS]]\n");
            return 2;
        }
    }

    const std::vector<std::string> boards = discoverBoards();
    if (list) {
        for (const std::string &name : boards)
            std::printf("%s\n", name.c_str());
        return 0;
    }
    if (board.empty()) {
        if (boards.empty()) {
            std::fprintf(stderr,
                         "hq_stat: no statsboard segments in /dev/shm "
                         "(run the target with --statsboard)\n");
            return 1;
        }
        if (boards.size() > 1) {
            std::fprintf(stderr,
                         "hq_stat: multiple boards; pick one with "
                         "--board=NAME:\n");
            for (const std::string &name : boards)
                std::fprintf(stderr, "  %s\n", name.c_str());
            return 1;
        }
        board = boards.front();
    }

    StatsBoardReader reader(board);
    if (!reader.valid()) {
        std::fprintf(stderr, "hq_stat: cannot attach to %s\n",
                     board.c_str());
        return 1;
    }

    StatsBoardSnapshot snap;
    if (!reader.read(snap)) {
        std::fprintf(stderr, "hq_stat: no consistent snapshot from %s\n",
                     board.c_str());
        return 1;
    }

    if (!watch) {
        if (json)
            printJson(snap, reader.pid());
        else
            printFull(snap, reader.pid());
        return 0;
    }

    std::signal(SIGINT, onSignal);
    std::signal(SIGTERM, onSignal);
    StatsBoardSnapshot prev;
    bool have_prev = false;
    while (!g_stop) {
        if (reader.read(snap)) {
            printWatch(snap, prev, have_prev, reader.pid());
            prev = snap;
            have_prev = true;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(watch_ms));
    }
    std::printf("\n");
    return 0;
}
