/**
 * @file
 * §5.4 "Other Metrics" — message-traffic and verifier-memory statistics
 * across the benchmark suite under HQ-CFI-SfeStk-MODEL: per-benchmark
 * messages per second (median / geometric mean / maximum), total
 * messages, and verifier shadow-store entries (median / mean / max,
 * and how many benchmarks need none).
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "common/log.h"
#include "common/stats.h"
#include "workloads/runner.h"
#include "telemetry/telemetry.h"

int
main(int argc, char **argv)
{
    using namespace hq;
    telemetry::handleBenchArgs(argc, argv);
    setLogLevel(LogLevel::Error);

    double scale = 0.1;
    if (argc > 1)
        scale = std::atof(argv[1]);

    RunnerOptions options;
    options.scale = scale;
    WorkloadRunner runner(options);

    std::printf("=== Sec. 5.4 metrics: AppendWrite traffic and verifier "
                "memory (scale %.3f) ===\n",
                scale);
    std::printf("%-14s %12s %10s %12s %10s\n", "Benchmark", "messages",
                "msgs/s", "max entries", "syscalls");

    std::vector<double> rates;
    std::vector<double> positive_rates;
    std::vector<double> entries;
    double max_rate = 0.0;
    std::string max_rate_name;
    double max_msgs = 0.0;
    std::string max_msgs_name;
    int zero_entry_benchmarks = 0;

    for (const SpecProfile &profile : specProfiles()) {
        const BenchmarkOutcome outcome =
            runner.run(profile, CfiDesign::HqSfeStk);
        const double rate =
            outcome.seconds > 0
                ? static_cast<double>(outcome.messages_sent) /
                      outcome.seconds
                : 0.0;
        rates.push_back(rate);
        if (rate > 0)
            positive_rates.push_back(rate);
        entries.push_back(
            static_cast<double>(outcome.verifier_max_entries));
        if (outcome.verifier_max_entries == 0)
            ++zero_entry_benchmarks;
        if (rate > max_rate) {
            max_rate = rate;
            max_rate_name = profile.name;
        }
        if (static_cast<double>(outcome.messages_sent) > max_msgs) {
            max_msgs = static_cast<double>(outcome.messages_sent);
            max_msgs_name = profile.name;
        }
        std::printf("%-14s %12llu %10.0f %12llu %10llu\n",
                    profile.name.c_str(),
                    static_cast<unsigned long long>(outcome.messages_sent),
                    rate,
                    static_cast<unsigned long long>(
                        outcome.verifier_max_entries),
                    static_cast<unsigned long long>(outcome.syscalls));
    }

    std::printf("\nMessage rate: median %.0f/s, geomean %.0f/s, max "
                "%.0f/s (%s)\n",
                median(rates), geomean(positive_rates), max_rate,
                max_rate_name.c_str());
    std::printf("  (paper: median 1.4e3/s, geomean 14/s, max 53e3/s on "
                "h264ref)\n");
    std::printf("Total messages: max %.3g (%s); paper max 4.76e9 "
                "(xalancbmk, ref scale)\n",
                max_msgs, max_msgs_name.c_str());
    std::printf("Verifier entries: median %.0f, mean %.0f, max %.0f; "
                "%d benchmark(s) with zero\n",
                median(entries), mean(entries), maxOf(entries),
                zero_entry_benchmarks);
    std::printf("  (paper: median 285, mean 221e3, max ~3e6; 14 "
                "benchmarks with zero entries)\n");
    return 0;
}
