/**
 * @file
 * Figure 3 — relative performance of HQ-CFI(-SfeStk) using different
 * IPC primitives: POSIX message queues (-MQ), the FPGA device model
 * (-FPGA), and the AppendWrite-µarch software model (-MODEL), across
 * the SPEC-like suite and NGINX. Relative performance = baseline time /
 * instrumented time (higher is better).
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "common/log.h"
#include "common/stats.h"
#include "ipc/posix_channels.h"
#include "workloads/runner.h"
#include "telemetry/telemetry.h"

namespace hq {
namespace {

struct VariantResult
{
    std::string name;
    std::vector<double> spec; //!< per-benchmark relative performance
    double nginx = 0.0;
};

VariantResult
sweepVariant(const std::string &name, ChannelKind channel, double scale)
{
    RunnerOptions options;
    options.scale = scale;
    options.channel = channel;
    WorkloadRunner runner(options);

    VariantResult result;
    result.name = name;
    for (const SpecProfile &profile : specProfiles()) {
        const double rel =
            runner.relativePerformance(profile, CfiDesign::HqSfeStk);
        if (profile.name == "nginx")
            result.nginx = rel;
        else
            result.spec.push_back(rel);
        std::printf("  %-14s %-12s %.3f\n", profile.name.c_str(),
                    name.c_str(), rel);
    }
    return result;
}

} // namespace
} // namespace hq

int
main(int argc, char **argv)
{
    using namespace hq;
    telemetry::handleBenchArgs(argc, argv);
    setLogLevel(LogLevel::Error);

    double scale = 0.4;
    if (argc > 1)
        scale = std::atof(argv[1]);

    std::printf("=== Figure 3: HQ-CFI-SfeStk relative performance by "
                "IPC primitive (scale %.3f) ===\n",
                scale);

    std::vector<VariantResult> variants;
    if (MqChannel::supported()) {
        variants.push_back(
            sweepVariant("MQ", ChannelKind::PosixMq, scale));
    } else {
        std::printf("(POSIX message queues unavailable: -MQ skipped)\n");
    }
    variants.push_back(sweepVariant("FPGA", ChannelKind::Fpga, scale));
    variants.push_back(
        sweepVariant("MODEL", ChannelKind::UarchModel, scale));

    std::printf("\n%-22s %10s %10s   %s\n", "Variant", "SPEC gmean",
                "NGINX", "(paper SPEC gmean)");
    for (const VariantResult &variant : variants) {
        const char *paper = variant.name == "MQ"
                                ? "0.39"
                                : (variant.name == "FPGA" ? "0.62"
                                                          : "0.87");
        std::printf("HQ-CFI-SfeStk-%-8s %10.3f %10.3f   %s\n",
                    variant.name.c_str(), geomean(variant.spec),
                    variant.nginx, paper);
    }
    std::printf("\nExpected shape: MQ (a system call per message) is "
                "far slower than the\nmemory-write AppendWrite variants;"
                " FPGA pays MMIO/PCIe stalls; MODEL is\nclosest to "
                "native.\n");
    return 0;
}
