/**
 * @file
 * Table 4 — correctness of CFI designs across all 48 benchmarks.
 *
 * Runs every benchmark under every design (continue-after-violation
 * mode, as in §5) plus the two version-specific baselines, and counts
 * errors (crash/hang), false positives (violation with no real bug),
 * invalid results (wrong output), and successful runs. Categories are
 * not mutually exclusive; OK requires none of them.
 */

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "common/log.h"
#include "workloads/runner.h"
#include "telemetry/telemetry.h"

namespace hq {
namespace {

struct TableRow
{
    std::string name;
    int errors = 0;
    int false_positives = 0;
    int invalid = 0;
    int ok = 0;
    int genuine_bugs = 0;
};

std::ofstream g_csv;

TableRow
sweepDesign(WorkloadRunner &runner, const std::string &name,
            CfiDesign design, bool old_baseline = false)
{
    TableRow row;
    row.name = name;
    for (const SpecProfile &profile : specProfiles()) {
        const BenchmarkOutcome outcome =
            old_baseline ? runner.runOldBaseline(profile)
                         : runner.run(profile, design);
        if (g_csv.is_open()) {
            g_csv << profile.name << "," << name << ","
                  << exitKindName(outcome.exit) << "," << outcome.error
                  << "," << outcome.false_positive << ","
                  << outcome.invalid << "," << outcome.ok << "\n";
        }
        row.errors += outcome.error;
        row.false_positives += outcome.false_positive;
        row.invalid += outcome.invalid;
        row.ok += outcome.ok;
        row.genuine_bugs += outcome.genuine_violation;
    }
    return row;
}

void
printRow(const TableRow &row, const char *paper)
{
    std::printf("%-16s %7d %16d %8d %4d   %s\n", row.name.c_str(),
                row.errors, row.false_positives, row.invalid, row.ok,
                paper);
}

} // namespace
} // namespace hq

int
main(int argc, char **argv)
{
    using namespace hq;
    telemetry::handleBenchArgs(argc, argv);
    setLogLevel(LogLevel::Error);

    double scale = 0.02;
    if (argc > 1)
        scale = std::atof(argv[1]);
    if (argc > 2) {
        g_csv.open(argv[2]);
        g_csv << "benchmark,design,exit,error,false_positive,invalid,"
                 "ok\n";
    }

    RunnerOptions options;
    options.scale = scale;
    WorkloadRunner runner(options);

    std::printf("=== Table 4: correctness of CFI designs "
                "(48 benchmarks, scale %.3f) ===\n",
                scale);
    std::printf("%-16s %7s %16s %8s %4s   %s\n", "Design", "Errors",
                "False Positives", "Invalid", "OK",
                "(paper: err/FP/invalid/OK)");

    printRow(sweepDesign(runner, "Baseline", CfiDesign::Baseline),
             "0/0/0/48");
    printRow(sweepDesign(runner, "Baseline-CCFI", CfiDesign::Baseline,
                         /*old_baseline=*/true),
             "2/0/2/46");
    printRow(sweepDesign(runner, "Baseline-CPI", CfiDesign::Baseline,
                         /*old_baseline=*/true),
             "2/0/2/46");
    printRow(sweepDesign(runner, "Clang/LLVM CFI", CfiDesign::ClangCfi),
             "0/15/0/33");
    printRow(sweepDesign(runner, "CCFI", CfiDesign::Ccfi), "12/29/9/19");
    printRow(sweepDesign(runner, "CPI", CfiDesign::Cpi), "14/0/14/34");

    const TableRow hq_row =
        sweepDesign(runner, "HQ-CFI", CfiDesign::HqSfeStk);
    printRow(hq_row, "0/0/0/48");
    std::printf("\nHQ-CFI additionally reported %d genuine "
                "use-after-free bug(s)\n(the omnetpp static-"
                "initialization-order bug, §5.2), which do not\ncount "
                "as false positives.\n",
                hq_row.genuine_bugs);
    return 0;
}
