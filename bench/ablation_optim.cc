/**
 * @file
 * Ablation — the compiler optimizations of §4.1.4: devirtualization,
 * store-to-load forwarding, and message elision. For a mix of
 * benchmarks, reports messages sent and wall time with all
 * optimizations, with each disabled, and with none.
 */

#include <cstdio>
#include <cstdlib>
#include <memory>

#include "common/log.h"
#include "common/timer.h"
#include "cfi/design.h"
#include "compiler/passes.h"
#include "ipc/shm_channel.h"
#include "policy/pointer_integrity.h"
#include "runtime/vm.h"
#include "verifier/verifier.h"
#include "workloads/spec_generator.h"
#include "workloads/spec_profiles.h"
#include "telemetry/telemetry.h"

namespace hq {
namespace {

struct OptimConfig
{
    const char *name;
    bool devirtualize;
    bool forwarding;
    bool elision;
};

struct OptimResult
{
    std::uint64_t messages = 0;
    double seconds = 0.0;
};

OptimResult
runConfig(const SpecProfile &profile, const OptimConfig &optim,
          double scale)
{
    ir::Module module = buildSpecModule(profile, scale);

    LoweringOptions lowering;
    lowering.mode = LoweringMode::Hq;
    PassManager pm;
    if (optim.devirtualize)
        pm.add(std::make_unique<DevirtualizationPass>());
    pm.add(std::make_unique<InitialLoweringPass>(lowering));
    if (optim.forwarding)
        pm.add(std::make_unique<StoreToLoadForwardingPass>());
    if (optim.elision)
        pm.add(std::make_unique<MessageElisionPass>());
    pm.add(std::make_unique<FinalLoweringPass>(lowering));
    pm.add(std::make_unique<SyscallSyncPass>());
    const Status status = pm.run(module);
    if (!status.isOk())
        panic(status.toString());

    KernelModule kernel;
    auto policy = std::make_shared<PointerIntegrityPolicy>();
    Verifier verifier(kernel, policy);
    ShmChannel channel(1 << 14);
    verifier.attachChannel(&channel, 1);
    HqRuntime runtime(1, channel, kernel);
    if (!runtime.enable().isOk())
        panic("enable failed");
    verifier.start();

    VmConfig config = makeVmConfig(CfiDesign::HqSfeStk);
    Vm vm(module, config, &runtime);
    Timer timer;
    const RunResult result = vm.run();
    OptimResult out;
    out.seconds = timer.elapsedSeconds();
    verifier.stop();
    if (result.exit != ExitKind::Ok)
        panic(profile.name + ": " + result.detail);
    out.messages = runtime.messagesSent();
    return out;
}

} // namespace
} // namespace hq

int
main(int argc, char **argv)
{
    using namespace hq;
    telemetry::handleBenchArgs(argc, argv);
    setLogLevel(LogLevel::Error);

    double scale = 0.3;
    if (argc > 1)
        scale = std::atof(argv[1]);

    const OptimConfig configs[] = {
        {"all optimizations", true, true, true},
        {"no devirtualization", false, true, true},
        {"no store-to-load fwd", true, false, true},
        {"no message elision", true, true, false},
        {"none", false, false, false},
    };

    std::printf("=== Ablation: compiler optimizations (scale %.2f) "
                "===\n",
                scale);
    for (const char *name : {"xalancbmk", "h264ref", "povray"}) {
        const SpecProfile &profile = specProfile(name);
        std::printf("\n%s:\n", name);
        std::printf("  %-24s %12s %10s\n", "Configuration", "messages",
                    "time (s)");
        std::uint64_t best_messages = 0;
        for (const OptimConfig &optim : configs) {
            const OptimResult result = runConfig(profile, optim, scale);
            if (optim.devirtualize && optim.forwarding && optim.elision)
                best_messages = result.messages;
            std::printf("  %-24s %12llu %10.4f%s\n", optim.name,
                        static_cast<unsigned long long>(result.messages),
                        result.seconds,
                        result.messages > best_messages ? "  (+msgs)"
                                                        : "");
        }
    }
    std::printf("\nExpected: each optimization removes messages "
                "(devirtualization removes\nvcall checks, forwarding "
                "removes dominated checks, elision removes\n"
                "never-checked defines), reducing message traffic and "
                "time.\n");
    return 0;
}
