/**
 * @file
 * Ablation — bounded asynchronous validation (§2.2).
 *
 * Compares, on the syscall-heavy NGINX-like workload:
 *   1. pipelined System-Call messages (the HerQules design: the message
 *      is hoisted to the earliest dominating point, so verification
 *      overlaps the program's own pre-syscall computation);
 *   2. naive synchronous validation (the strawman the paper rejects:
 *      wait for the verifier to drain every outstanding message before
 *      each system call).
 * Reports wall time and how often the kernel had to block.
 */

#include <cstdio>
#include <cstdlib>
#include <memory>

#include "cfi/design.h"
#include "common/log.h"
#include "common/timer.h"
#include "ipc/shm_channel.h"
#include "policy/pointer_integrity.h"
#include "runtime/vm.h"
#include "verifier/verifier.h"
#include "workloads/spec_generator.h"
#include "workloads/spec_profiles.h"
#include "telemetry/telemetry.h"

namespace hq {
namespace {

struct SyncResult
{
    double seconds = 0.0;
    std::uint64_t syscalls = 0;
    std::uint64_t waits = 0;
};

SyncResult
runMode(bool naive, double scale, bool elide_readonly = false)
{
    ir::Module module = buildSpecModule(specProfile("nginx"), scale);
    const Status status = instrumentModule(module, CfiDesign::HqSfeStk);
    if (!status.isOk())
        panic(status.toString());

    KernelModule::Config kconfig;
    kconfig.elide_readonly_syscalls = elide_readonly;
    KernelModule kernel(kconfig);
    auto policy = std::make_shared<PointerIntegrityPolicy>();
    Verifier verifier(kernel, policy);
    ShmChannel channel(1 << 14);
    verifier.attachChannel(&channel, 1);
    HqRuntime runtime(1, channel, kernel);
    if (!runtime.enable().isOk())
        panic("enable failed");
    verifier.start();

    VmConfig config = makeVmConfig(CfiDesign::HqSfeStk);
    config.naive_sync = naive;
    Vm vm(module, config, &runtime);

    Timer timer;
    const RunResult result = vm.run();
    SyncResult out;
    out.seconds = timer.elapsedSeconds();
    verifier.stop();
    if (result.exit != ExitKind::Ok)
        panic(result.detail);

    const KernelProcessStats stats = kernel.statsFor(1);
    out.syscalls = stats.syscalls;
    out.waits = stats.waits;
    return out;
}

} // namespace
} // namespace hq

int
main(int argc, char **argv)
{
    using namespace hq;
    telemetry::handleBenchArgs(argc, argv);
    setLogLevel(LogLevel::Error);

    double scale = 3.0;
    if (argc > 1)
        scale = std::atof(argv[1]);

    std::printf("=== Ablation: bounded asynchronous validation (NGINX "
                "workload, scale %.2f) ===\n",
                scale);
    // Min-of-3 timing: condition-variable wakeup latency is noisy.
    SyncResult pipelined = runMode(false, scale);
    SyncResult naive = runMode(true, scale);
    for (int rep = 1; rep < 3; ++rep) {
        const SyncResult p = runMode(false, scale);
        const SyncResult n = runMode(true, scale);
        if (p.seconds < pipelined.seconds)
            pipelined = p;
        if (n.seconds < naive.seconds)
            naive = n;
    }

    std::printf("%-26s %10s %10s %12s\n", "Mode", "time (s)", "syscalls",
                "kernel waits");
    std::printf("%-26s %10.4f %10llu %12llu\n",
                "pipelined (HerQules)", pipelined.seconds,
                static_cast<unsigned long long>(pipelined.syscalls),
                static_cast<unsigned long long>(pipelined.waits));
    std::printf("%-26s %10.4f %10llu %12llu\n", "naive synchronous",
                naive.seconds,
                static_cast<unsigned long long>(naive.syscalls),
                static_cast<unsigned long long>(naive.waits));
    std::printf("\nnaive/pipelined time ratio: %.2fx\n",
                naive.seconds / pipelined.seconds);
    std::printf("Expected: the pipelined System-Call message hides "
                "verification latency,\nso the kernel rarely blocks; "
                "the naive mode serializes on every syscall.\n");
    return 0;
}
