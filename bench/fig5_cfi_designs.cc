/**
 * @file
 * Figure 5 — relative performance of all CFI designs on SPEC-like
 * benchmarks and NGINX, each normalized against its version-specific
 * baseline (§5.3.2). Benchmarks that error or produce invalid output
 * under a design are excluded from its geometric mean, as in the paper
 * (which skews CCFI/CPI upward because their slowest benchmarks crash).
 */

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <vector>

#include "common/log.h"
#include "common/stats.h"
#include "workloads/runner.h"
#include "telemetry/telemetry.h"

namespace hq {
namespace {

struct DesignSweep
{
    std::string name;
    std::vector<double> spec;
    double nginx = 0.0;
    int excluded = 0;
};

/** CSV rows accumulated across the sweep (artifact-style out.csv). */
std::ofstream g_csv;

DesignSweep
sweep(WorkloadRunner &runner, CfiDesign design)
{
    DesignSweep out;
    out.name = designInfo(design).name;
    for (const SpecProfile &profile : specProfiles()) {
        // Exclusion rule (§5.3.2): omit error/invalid runs, keep
        // false-positive-only runs.
        const BenchmarkOutcome outcome = runner.run(profile, design);
        if (outcome.error || outcome.invalid) {
            ++out.excluded;
            std::printf("  %-14s %-16s excluded (%s)\n",
                        profile.name.c_str(), out.name.c_str(),
                        outcome.error ? "error" : "invalid");
            continue;
        }
        const double rel = runner.relativePerformance(profile, design);
        if (g_csv.is_open())
            g_csv << profile.name << "," << out.name << "," << rel
                  << "\n";
        if (profile.name == "nginx")
            out.nginx = rel;
        else
            out.spec.push_back(rel);
        std::printf("  %-14s %-16s %.3f\n", profile.name.c_str(),
                    out.name.c_str(), rel);
    }
    return out;
}

} // namespace
} // namespace hq

int
main(int argc, char **argv)
{
    using namespace hq;
    telemetry::handleBenchArgs(argc, argv);
    setLogLevel(LogLevel::Error);

    double scale = 0.4;
    if (argc > 1)
        scale = std::atof(argv[1]);
    if (argc > 2) {
        g_csv.open(argv[2]);
        g_csv << "benchmark,design,relative_performance\n";
    }

    RunnerOptions options;
    options.scale = scale;
    WorkloadRunner runner(options);

    std::printf("=== Figure 5: relative performance of CFI designs "
                "(scale %.3f) ===\n",
                scale);

    const CfiDesign designs[] = {CfiDesign::HqSfeStk, CfiDesign::HqRetPtr,
                                 CfiDesign::ClangCfi, CfiDesign::Ccfi,
                                 CfiDesign::Cpi};
    const char *paper_spec[] = {"0.88", "0.55", "0.94", "0.49", "0.96"};
    const char *paper_nginx[] = {"0.79", "0.62", "0.97", "0.78", "0.96"};

    std::vector<DesignSweep> results;
    for (CfiDesign design : designs)
        results.push_back(sweep(runner, design));

    std::printf("\n%-18s %10s %8s %9s   %s\n", "Design", "SPEC gmean",
                "NGINX", "excluded", "(paper SPEC/NGINX)");
    for (std::size_t i = 0; i < results.size(); ++i) {
        std::printf("%-18s %10.3f %8.3f %9d   %s / %s\n",
                    results[i].name.c_str(), geomean(results[i].spec),
                    results[i].nginx, results[i].excluded, paper_spec[i],
                    paper_nginx[i]);
    }
    std::printf("\nExpected shape: Clang/LLVM CFI and CPI are cheapest "
                "(few/cheap checks),\nHQ-CFI-SfeStk is close behind, "
                "HQ-CFI-RetPtr pays two messages per call,\nand CCFI's "
                "per-access MACs are the most expensive. CCFI/CPI "
                "geomeans are\nskewed upward by excluded crashes "
                "(§5.3.2).\n");
    return 0;
}
