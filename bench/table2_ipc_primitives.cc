/**
 * @file
 * Table 2 — comparison of IPC primitives: average time to send one
 * 32-byte AppendWrite message, with a concurrent receiver draining the
 * channel (the paper's micro-benchmark "repeatedly sends messages").
 *
 * Software rows (message queue, pipe, socket, shared memory) measure
 * the real kernel primitives on this host; AppendWrite-FPGA runs the
 * device model with its calibrated MMIO latency (the paper measures
 * 102 ns on an Intel PAC); AppendWrite-µarch is the software MODEL (the
 * paper's <2 ns row is the projected hardware instruction, which has no
 * software-measurable equivalent — see EXPERIMENTS.md).
 */

#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "common/stats.h"
#include "common/timer.h"
#include "ipc/channel.h"
#include "ipc/posix_channels.h"
#include "telemetry/telemetry.h"

namespace hq {
namespace {

/** Background drainer so send() never waits on a full transport. */
class Drainer
{
  public:
    explicit Drainer(Channel &channel) : _channel(channel)
    {
        _thread = std::thread([this] {
            Message message;
            while (!_stop.load(std::memory_order_relaxed)) {
                if (!_channel.tryRecv(message))
                    std::this_thread::yield();
            }
            while (_channel.tryRecv(message)) {
            }
        });
    }

    ~Drainer()
    {
        _stop.store(true, std::memory_order_relaxed);
        _thread.join();
    }

  private:
    Channel &_channel;
    std::atomic<bool> _stop{false};
    std::thread _thread;
};

void
sendLoop(benchmark::State &state, ChannelKind kind)
{
    if (kind == ChannelKind::PosixMq && !MqChannel::supported()) {
        state.SkipWithError("POSIX message queues unavailable");
        return;
    }
    auto channel = makeChannel(kind, 1 << 12);
    Drainer drainer(*channel);
    Message message(Opcode::PointerDefine, 0x1000, 0x2000);
    for (auto _ : state) {
        benchmark::DoNotOptimize(channel->send(message));
    }
    state.SetItemsProcessed(state.iterations());
}

void BM_Send_PosixMq(benchmark::State &s) { sendLoop(s, ChannelKind::PosixMq); }
void BM_Send_Pipe(benchmark::State &s) { sendLoop(s, ChannelKind::Pipe); }
void BM_Send_Socket(benchmark::State &s) { sendLoop(s, ChannelKind::Socket); }
void BM_Send_SharedMemory(benchmark::State &s)
{
    sendLoop(s, ChannelKind::SharedMemory);
}
void BM_Send_AppendWriteFpga(benchmark::State &s)
{
    sendLoop(s, ChannelKind::Fpga);
}
void BM_Send_AppendWriteUarchModel(benchmark::State &s)
{
    sendLoop(s, ChannelKind::UarchModel);
}
void BM_Send_CrossProcessRing(benchmark::State &s)
{
    sendLoop(s, ChannelKind::CrossProcess);
}

BENCHMARK(BM_Send_PosixMq);
BENCHMARK(BM_Send_Pipe);
BENCHMARK(BM_Send_Socket);
BENCHMARK(BM_Send_SharedMemory);
BENCHMARK(BM_Send_AppendWriteFpga);
BENCHMARK(BM_Send_AppendWriteUarchModel);
BENCHMARK(BM_Send_CrossProcessRing);

/** Manual measurement used for the printed Table-2 comparison. */
double
measureSendNs(ChannelKind kind)
{
    if (kind == ChannelKind::PosixMq && !MqChannel::supported())
        return -1.0;
    auto channel = makeChannel(kind, 1 << 12);
    Drainer drainer(*channel);
    Message message(Opcode::PointerDefine, 0x1000, 0x2000);

    // Warm-up.
    for (int i = 0; i < 2000; ++i)
        channel->send(message);

    constexpr int kSends = 200000;
    Timer timer;
    for (int i = 0; i < kSends; ++i)
        channel->send(message);
    return static_cast<double>(timer.elapsedNs()) / kSends;
}

void
printTable2()
{
    struct Row
    {
        ChannelKind kind;
        const char *paper_ns;
    };
    const Row rows[] = {
        {ChannelKind::PosixMq, "146"},
        {ChannelKind::Pipe, "316"},
        {ChannelKind::Socket, "346"},
        {ChannelKind::SharedMemory, "12"},
        {ChannelKind::Fpga, "102"},
        {ChannelKind::UarchModel, "<2 (hw projection)"},
        {ChannelKind::CrossProcess, "-"},
    };

    std::printf("\n=== Table 2: IPC primitive comparison ===\n");
    std::printf("%-28s %-7s %-7s %-13s %12s %10s\n", "IPC Primitive",
                "Append", "Async.", "Primary", "Measured", "Paper");
    std::printf("%-28s %-7s %-7s %-13s %12s %10s\n", "", "Only",
                "Valid.", "Cost", "(ns)", "(ns)");
    for (const Row &row : rows) {
        auto channel = makeChannel(row.kind, 64);
        const ChannelTraits &traits = channel->traits();
        const double ns = measureSendNs(row.kind);
        char measured[32];
        if (ns < 0)
            std::snprintf(measured, sizeof measured, "n/a");
        else
            std::snprintf(measured, sizeof measured, "%.1f", ns);
        std::printf("%-28s %-7s %-7s %-13s %12s %10s\n",
                    traits.name.c_str(), traits.appendOnly ? "yes" : "NO",
                    traits.asyncValidation ? "yes" : "no",
                    traits.primaryCost.c_str(), measured, row.paper_ns);
    }
    std::printf("\nNote: software rows measure this host's kernel; the "
                "paper's testbed\n(i9-9900K @5GHz) differs in absolute "
                "terms. The expected *shape* is:\nsyscall-based rows are "
                "1-2 orders slower than memory-write rows, and\n"
                "AppendWrite combines append-only with asynchronous "
                "validation.\n");
}

} // namespace
} // namespace hq

int
main(int argc, char **argv)
{
    hq::telemetry::handleBenchArgs(argc, argv);
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    hq::printTable2();
    return 0;
}
