/**
 * @file
 * Ablation — AppendWrite buffer sizing. The paper selects a 1 GB
 * circular buffer so the FPGA never drops and the MODEL never stalls;
 * this ablation shows why: with small appendable memory regions the
 * sender faults (MODEL: waits for the verifier) frequently, eroding the
 * decoupling that asynchronous validation buys.
 */

#include <cstdio>
#include <cstdlib>
#include <memory>

#include "cfi/design.h"
#include "common/log.h"
#include "common/timer.h"
#include "policy/pointer_integrity.h"
#include "runtime/vm.h"
#include "uarch/uarch_model_channel.h"
#include "verifier/verifier.h"
#include "workloads/spec_generator.h"
#include "workloads/spec_profiles.h"
#include "telemetry/telemetry.h"

namespace hq {
namespace {

double
runWithCapacity(std::size_t capacity, double scale,
                std::size_t poll_batch = Verifier::Config{}.poll_batch)
{
    ir::Module module = buildSpecModule(specProfile("h264ref"), scale);
    const Status status = instrumentModule(module, CfiDesign::HqSfeStk);
    if (!status.isOk())
        panic(status.toString());

    KernelModule kernel;
    auto policy = std::make_shared<PointerIntegrityPolicy>();
    Verifier::Config verifier_config;
    verifier_config.poll_batch = poll_batch;
    Verifier verifier(kernel, policy, verifier_config);
    UarchModelChannel channel(capacity);
    verifier.attachChannel(&channel, 1);
    HqRuntime runtime(1, channel, kernel);
    if (!runtime.enable().isOk())
        panic("enable failed");
    verifier.start();

    VmConfig config = makeVmConfig(CfiDesign::HqSfeStk);
    Vm vm(module, config, &runtime);
    Timer timer;
    const RunResult result = vm.run();
    const double seconds = timer.elapsedSeconds();
    verifier.stop();
    if (result.exit != ExitKind::Ok)
        panic(result.detail);
    return seconds;
}

} // namespace
} // namespace hq

int
main(int argc, char **argv)
{
    using namespace hq;
    telemetry::handleBenchArgs(argc, argv);
    setLogLevel(LogLevel::Error);

    double scale = 0.5;
    if (argc > 1)
        scale = std::atof(argv[1]);

    std::printf("=== Ablation: appendable-memory-region capacity "
                "(h264ref, scale %.2f) ===\n",
                scale);
    std::printf("%-22s %12s\n", "AMR capacity (msgs)", "time (s)");
    double big_time = 0.0;
    for (std::size_t capacity : {16u, 256u, 4096u, 65536u}) {
        const double seconds = runWithCapacity(capacity, scale);
        if (capacity == 65536u)
            big_time = seconds;
        std::printf("%-22zu %12.4f\n", capacity, seconds);
    }
    std::printf("\nExpected: small regions make the sender fault/wait "
                "for the verifier,\ncoupling the processes back "
                "together; the paper's 1 GB buffer makes\nthis "
                "effectively never happen (big-buffer time here: "
                "%.4f s).\n",
                big_time);

    std::printf("\n=== Ablation: verifier poll batch size "
                "(h264ref, scale %.2f, 4096-msg AMR) ===\n",
                scale);
    std::printf("%-22s %12s\n", "poll_batch (msgs)", "time (s)");
    for (std::size_t poll_batch : {1u, 8u, 64u}) {
        const double seconds = runWithCapacity(4096, scale, poll_batch);
        std::printf("%-22zu %12.4f\n", poll_batch, seconds);
    }
    std::printf("\nExpected: poll_batch 1 re-pays the lock, virtual "
                "dispatch, and\ntelemetry cost per message; larger "
                "batches amortize them, and the\ngain saturates once "
                "the batch covers the typical ring occupancy.\n");
    return 0;
}
