/**
 * @file
 * Microbenchmark — SPSC ring throughput, single-message vs batched.
 *
 * Measures the AppendWrite fast path in isolation: one producer thread
 * and one consumer thread moving messages through an SpscRing (the
 * buffer behind the FPGA host buffer and the MODEL's appendable memory
 * region). Batch size 1 exercises tryPush/tryPop; larger batches use
 * tryPushBatch/tryPopBatch, which amortize the cross-core cursor
 * synchronization — one acquire-load and one release-store — over the
 * whole batch. The consumer verifies that every message arrives exactly
 * once and in order, so the numbers cannot come at the cost of the
 * AppendWrite ordering guarantees.
 *
 * A second sweep measures the *verified pipeline*: a producer doing
 * batched sends through a ShmChannel into a real Verifier (CRC +
 * sequence checking on, pointer-integrity policy), once per negotiated
 * wire format. v1 stamps and checks a CRC per 32-byte message; v2
 * ships 64-record frames with two frame-level CRCs and drains them
 * zero-copy, which is where the format's messages/sec advantage comes
 * from.
 *
 * Flags:
 *   --smoke            quick correctness pass (small message count)
 *   --messages=N       total messages per batch-size run
 *   --capacity=N       ring capacity in messages (default 4096)
 *   --format=v1|v2|both  verified-pipeline formats to run (default both)
 *   --json=FILE        write machine-readable results (hq-ring-bench/1)
 *   --telemetry[...]   standard telemetry flags (handleBenchArgs)
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/crc32.h"
#include "common/log.h"
#include "common/timer.h"
#include "ipc/shm_channel.h"
#include "ipc/spsc_ring.h"
#include "kernel/kernel.h"
#include "policy/pointer_integrity.h"
#include "telemetry/telemetry.h"
#include "verifier/verifier.h"

namespace hq {
namespace {

constexpr std::size_t kMaxBatch = 64;

struct RunResult
{
    double seconds = 0.0;
    bool ok = false;
};

/** Push total messages with the given batch size; verify on the popper. */
RunResult
runOnce(std::size_t capacity, std::size_t total, std::size_t batch)
{
    SpscRing ring(capacity);
    bool order_ok = true;

    Timer timer;
    std::thread consumer([&] {
        Message buffer[kMaxBatch];
        std::uint64_t expected = 0;
        while (expected < total) {
            std::size_t n;
            if (batch == 1) {
                n = ring.tryPop(buffer[0]) ? 1 : 0;
            } else {
                n = ring.tryPopBatch(buffer, batch);
            }
            for (std::size_t i = 0; i < n; ++i) {
                if (buffer[i].arg0 != expected) {
                    order_ok = false;
                    return;
                }
                ++expected;
            }
            if (n == 0)
                std::this_thread::yield();
        }
    });

    Message scratch[kMaxBatch];
    for (auto &message : scratch) {
        message = Message{};
        message.op = Opcode::PointerDefine;
    }
    std::uint64_t sent = 0;
    while (sent < total) {
        const std::size_t want =
            batch < total - sent ? batch : static_cast<std::size_t>(
                                               total - sent);
        for (std::size_t i = 0; i < want; ++i)
            scratch[i].arg0 = sent + i;
        std::size_t pushed = 0;
        if (batch == 1) {
            while (!ring.tryPush(scratch[0]))
                std::this_thread::yield();
            pushed = 1;
        } else {
            while (pushed < want) {
                const std::size_t n =
                    ring.tryPushBatch(scratch + pushed, want - pushed);
                if (n == 0)
                    std::this_thread::yield();
                pushed += n;
            }
        }
        sent += pushed;
    }
    consumer.join();
    RunResult result;
    result.seconds = timer.elapsedSeconds();
    result.ok = order_ok;
    return result;
}

/**
 * Aggregate throughput across `rings` independent producer/consumer
 * pairs (batch 32) — the transport-level analogue of the sharded
 * verifier, where each shard drains its own set of SPSC rings with no
 * shared cursors. Scaling beyond 1x requires real cores.
 */
RunResult
runMultiRing(std::size_t capacity, std::size_t per_ring,
             std::size_t rings)
{
    constexpr std::size_t kBatch = 32;
    std::vector<std::thread> threads;
    std::vector<char> ok(rings, 1);
    std::vector<std::unique_ptr<SpscRing>> ring_ptrs;
    for (std::size_t r = 0; r < rings; ++r)
        ring_ptrs.push_back(std::make_unique<SpscRing>(capacity));

    Timer timer;
    for (std::size_t r = 0; r < rings; ++r) {
        SpscRing &ring = *ring_ptrs[r];
        threads.emplace_back([&ring, &ok, r, per_ring] {
            Message buffer[kMaxBatch];
            std::uint64_t expected = 0;
            while (expected < per_ring) {
                const std::size_t n = ring.tryPopBatch(buffer, kBatch);
                for (std::size_t i = 0; i < n; ++i) {
                    if (buffer[i].arg0 != expected) {
                        ok[r] = 0;
                        return;
                    }
                    ++expected;
                }
                if (n == 0)
                    std::this_thread::yield();
            }
        });
        threads.emplace_back([&ring, per_ring] {
            Message scratch[kMaxBatch];
            for (auto &message : scratch) {
                message = Message{};
                message.op = Opcode::PointerDefine;
            }
            std::uint64_t sent = 0;
            while (sent < per_ring) {
                const std::size_t want =
                    kBatch < per_ring - sent
                        ? kBatch
                        : static_cast<std::size_t>(per_ring - sent);
                for (std::size_t i = 0; i < want; ++i)
                    scratch[i].arg0 = sent + i;
                std::size_t pushed = 0;
                while (pushed < want) {
                    const std::size_t n = ring.tryPushBatch(
                        scratch + pushed, want - pushed);
                    if (n == 0)
                        std::this_thread::yield();
                    pushed += n;
                }
                sent += pushed;
            }
        });
    }
    for (auto &thread : threads)
        thread.join();
    RunResult result;
    result.seconds = timer.elapsedSeconds();
    result.ok = true;
    for (std::size_t r = 0; r < rings; ++r)
        result.ok = result.ok && ok[r];
    return result;
}

/**
 * End-to-end verified throughput for one wire format: producer thread
 * batch-sending pointer-integrity checks, consumer thread running the
 * real verifier drain (CRC + sequence verification, policy lookups).
 */
RunResult
runVerifiedPipeline(std::size_t capacity, std::size_t total,
                    WireFormat format)
{
    KernelModule kernel;
    auto policy = std::make_shared<PointerIntegrityPolicy>();
    Verifier::Config config;
    config.kill_on_violation = false;
    config.check_sequence = true;
    config.check_crc = true;
    config.num_shards = 1;
    Verifier verifier(kernel, policy, config);

    ShmChannel channel(capacity);
    RunResult result;
    if (format != WireFormat::V1 &&
        !channel.negotiateFormat(format)) {
        return result; // ok=false
    }
    kernel.enableProcess(1);
    verifier.attachChannel(&channel, 1);

    Message burst[kMaxBatch];
    for (auto &message : burst)
        message = Message(Opcode::PointerCheck, 0x1000, 0xAAAA);

    Timer timer;
    std::thread consumer([&] {
        while (verifier.totalMessages() < total + 1) {
            if (verifier.poll() == 0)
                std::this_thread::yield();
        }
    });

    // Define the pointer first so every check hits the shadow store.
    bool send_ok =
        channel.send(Message(Opcode::PointerDefine, 0x1000, 0xAAAA))
            .isOk();
    std::uint64_t sent = 0;
    while (send_ok && sent < total) {
        const std::size_t want =
            kMaxBatch < total - sent
                ? kMaxBatch
                : static_cast<std::size_t>(total - sent);
        send_ok = channel.sendBatch(burst, want).isOk();
        sent += want;
    }
    consumer.join();
    result.seconds = timer.elapsedSeconds();
    result.ok = send_ok && !verifier.hasViolation(1) &&
                verifier.statsFor(1).messages == total + 1;
    kernel.exitProcess(1);
    return result;
}

} // namespace
} // namespace hq

int
main(int argc, char **argv)
{
    using namespace hq;
    telemetry::handleBenchArgs(argc, argv);
    setLogLevel(LogLevel::Error);

    bool smoke = false;
    std::size_t total = 8u << 20; // 8 Mi messages
    std::size_t capacity = 4096;
    bool run_v1 = true;
    bool run_v2 = true;
    std::string json_path;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--smoke") {
            smoke = true;
            total = 1u << 17;
        } else if (arg.rfind("--messages=", 0) == 0) {
            total = std::strtoull(arg.c_str() + 11, nullptr, 10);
        } else if (arg.rfind("--capacity=", 0) == 0) {
            capacity = std::strtoull(arg.c_str() + 11, nullptr, 10);
        } else if (arg == "--format=v1") {
            run_v2 = false;
        } else if (arg == "--format=v2") {
            run_v1 = false;
        } else if (arg == "--format=both") {
            run_v1 = run_v2 = true;
        } else if (arg.rfind("--json=", 0) == 0) {
            json_path = arg.substr(7);
        }
    }

    std::printf("=== SPSC ring throughput (capacity %zu, %zu messages, "
                "2 threads) ===\n",
                capacity, total);
    std::printf("%-12s %14s %14s %10s\n", "batch", "time (s)", "Mmsg/s",
                "speedup");

    double single_rate = 0.0;
    bool all_ok = true;
    for (std::size_t batch : {std::size_t{1}, std::size_t{8},
                              std::size_t{32}, std::size_t{64}}) {
        const RunResult result = runOnce(capacity, total, batch);
        all_ok = all_ok && result.ok;
        const double rate = total / result.seconds / 1e6;
        if (batch == 1)
            single_rate = rate;
        std::printf("%-12zu %14.4f %14.2f %9.2fx%s\n", batch,
                    result.seconds, rate, rate / single_rate,
                    result.ok ? "" : "  ORDER VIOLATION");
    }

    // Multi-ring sweep: per-shard drains in the sharded verifier give
    // each worker its own rings, so aggregate transport throughput at
    // 1/2/4/8 independent rings bounds what shard scaling can deliver.
    std::printf("\n=== Multi-ring aggregate throughput (batch 32, "
                "%zu messages/ring) ===\n",
                total / 8);
    std::printf("%-12s %14s %14s %10s\n", "rings", "time (s)", "Mmsg/s",
                "speedup");
    double single_ring_rate = 0.0;
    for (std::size_t rings : {std::size_t{1}, std::size_t{2},
                              std::size_t{4}, std::size_t{8}}) {
        const RunResult result = runMultiRing(capacity, total / 8, rings);
        all_ok = all_ok && result.ok;
        const double rate =
            (total / 8) * rings / result.seconds / 1e6;
        if (rings == 1)
            single_ring_rate = rate;
        std::printf("%-12zu %14.4f %14.2f %9.2fx%s\n", rings,
                    result.seconds, rate, rate / single_ring_rate,
                    result.ok ? "" : "  ORDER VIOLATION");
    }

    // Verified-pipeline sweep: sender -> ShmChannel -> Verifier with
    // integrity checking on, per negotiated wire format.
    const std::size_t pipeline_total = smoke ? total : total / 4;
    std::printf("\n=== Verified pipeline throughput (capacity %zu, %zu "
                "messages, CRC backend %s) ===\n",
                capacity, pipeline_total, crc32::implName());
    std::printf("%-12s %14s %14s %10s\n", "format", "time (s)", "Mmsg/s",
                "speedup");
    double v1_rate = 0.0;
    double v2_rate = 0.0;
    if (run_v1) {
        const RunResult result =
            runVerifiedPipeline(capacity, pipeline_total, WireFormat::V1);
        all_ok = all_ok && result.ok;
        v1_rate = pipeline_total / result.seconds / 1e6;
        std::printf("%-12s %14.4f %14.2f %10s%s\n", "v1", result.seconds,
                    v1_rate, "1.00x", result.ok ? "" : "  FAILED");
    }
    if (run_v2) {
        const RunResult result =
            runVerifiedPipeline(capacity, pipeline_total, WireFormat::V2);
        all_ok = all_ok && result.ok;
        v2_rate = pipeline_total / result.seconds / 1e6;
        std::printf("%-12s %14.4f %14.2f %9.2fx%s\n", "v2",
                    result.seconds, v2_rate,
                    v1_rate > 0.0 ? v2_rate / v1_rate : 1.0,
                    result.ok ? "" : "  FAILED");
    }

    if (!json_path.empty()) {
        std::FILE *out = std::fopen(json_path.c_str(), "w");
        if (out == nullptr) {
            std::printf("FAIL: cannot write %s\n", json_path.c_str());
            return 1;
        }
        std::fprintf(out,
                     "{\n"
                     "  \"schema\": \"hq-ring-bench/1\",\n"
                     "  \"capacity\": %zu,\n"
                     "  \"pipeline_messages\": %zu,\n"
                     "  \"crc_backend\": \"%s\",\n"
                     "  \"verified_pipeline\": {\n",
                     capacity, pipeline_total, crc32::implName());
        bool first = true;
        if (run_v1) {
            std::fprintf(out, "    \"v1\": {\"mmsg_per_sec\": %.4f}",
                         v1_rate);
            first = false;
        }
        if (run_v2) {
            std::fprintf(out, "%s    \"v2\": {\"mmsg_per_sec\": %.4f}",
                         first ? "" : ",\n", v2_rate);
        }
        std::fprintf(out, "\n  },\n  \"ok\": %s\n}\n",
                     all_ok ? "true" : "false");
        std::fclose(out);
        std::printf("wrote %s\n", json_path.c_str());
    }

    if (!all_ok) {
        std::printf("\nFAIL: messages lost, reordered, or pipeline "
                    "verification failed\n");
        return 1;
    }
    if (smoke)
        std::printf("\nsmoke OK: all batch sizes, ring counts, and wire "
                    "formats delivered every message in order\n");
    return 0;
}
