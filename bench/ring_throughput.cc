/**
 * @file
 * Microbenchmark — SPSC ring throughput, single-message vs batched.
 *
 * Measures the AppendWrite fast path in isolation: one producer thread
 * and one consumer thread moving messages through an SpscRing (the
 * buffer behind the FPGA host buffer and the MODEL's appendable memory
 * region). Batch size 1 exercises tryPush/tryPop; larger batches use
 * tryPushBatch/tryPopBatch, which amortize the cross-core cursor
 * synchronization — one acquire-load and one release-store — over the
 * whole batch. The consumer verifies that every message arrives exactly
 * once and in order, so the numbers cannot come at the cost of the
 * AppendWrite ordering guarantees.
 *
 * Flags:
 *   --smoke            quick correctness pass (small message count)
 *   --messages=N       total messages per batch-size run
 *   --capacity=N       ring capacity in messages (default 4096)
 *   --telemetry[...]   standard telemetry flags (handleBenchArgs)
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/log.h"
#include "common/timer.h"
#include "ipc/spsc_ring.h"
#include "telemetry/telemetry.h"

namespace hq {
namespace {

constexpr std::size_t kMaxBatch = 64;

struct RunResult
{
    double seconds = 0.0;
    bool ok = false;
};

/** Push total messages with the given batch size; verify on the popper. */
RunResult
runOnce(std::size_t capacity, std::size_t total, std::size_t batch)
{
    SpscRing ring(capacity);
    bool order_ok = true;

    Timer timer;
    std::thread consumer([&] {
        Message buffer[kMaxBatch];
        std::uint64_t expected = 0;
        while (expected < total) {
            std::size_t n;
            if (batch == 1) {
                n = ring.tryPop(buffer[0]) ? 1 : 0;
            } else {
                n = ring.tryPopBatch(buffer, batch);
            }
            for (std::size_t i = 0; i < n; ++i) {
                if (buffer[i].arg0 != expected) {
                    order_ok = false;
                    return;
                }
                ++expected;
            }
            if (n == 0)
                std::this_thread::yield();
        }
    });

    Message scratch[kMaxBatch];
    for (auto &message : scratch) {
        message = Message{};
        message.op = Opcode::PointerDefine;
    }
    std::uint64_t sent = 0;
    while (sent < total) {
        const std::size_t want =
            batch < total - sent ? batch : static_cast<std::size_t>(
                                               total - sent);
        for (std::size_t i = 0; i < want; ++i)
            scratch[i].arg0 = sent + i;
        std::size_t pushed = 0;
        if (batch == 1) {
            while (!ring.tryPush(scratch[0]))
                std::this_thread::yield();
            pushed = 1;
        } else {
            while (pushed < want) {
                const std::size_t n =
                    ring.tryPushBatch(scratch + pushed, want - pushed);
                if (n == 0)
                    std::this_thread::yield();
                pushed += n;
            }
        }
        sent += pushed;
    }
    consumer.join();
    RunResult result;
    result.seconds = timer.elapsedSeconds();
    result.ok = order_ok;
    return result;
}

/**
 * Aggregate throughput across `rings` independent producer/consumer
 * pairs (batch 32) — the transport-level analogue of the sharded
 * verifier, where each shard drains its own set of SPSC rings with no
 * shared cursors. Scaling beyond 1x requires real cores.
 */
RunResult
runMultiRing(std::size_t capacity, std::size_t per_ring,
             std::size_t rings)
{
    constexpr std::size_t kBatch = 32;
    std::vector<std::thread> threads;
    std::vector<char> ok(rings, 1);
    std::vector<std::unique_ptr<SpscRing>> ring_ptrs;
    for (std::size_t r = 0; r < rings; ++r)
        ring_ptrs.push_back(std::make_unique<SpscRing>(capacity));

    Timer timer;
    for (std::size_t r = 0; r < rings; ++r) {
        SpscRing &ring = *ring_ptrs[r];
        threads.emplace_back([&ring, &ok, r, per_ring] {
            Message buffer[kMaxBatch];
            std::uint64_t expected = 0;
            while (expected < per_ring) {
                const std::size_t n = ring.tryPopBatch(buffer, kBatch);
                for (std::size_t i = 0; i < n; ++i) {
                    if (buffer[i].arg0 != expected) {
                        ok[r] = 0;
                        return;
                    }
                    ++expected;
                }
                if (n == 0)
                    std::this_thread::yield();
            }
        });
        threads.emplace_back([&ring, per_ring] {
            Message scratch[kMaxBatch];
            for (auto &message : scratch) {
                message = Message{};
                message.op = Opcode::PointerDefine;
            }
            std::uint64_t sent = 0;
            while (sent < per_ring) {
                const std::size_t want =
                    kBatch < per_ring - sent
                        ? kBatch
                        : static_cast<std::size_t>(per_ring - sent);
                for (std::size_t i = 0; i < want; ++i)
                    scratch[i].arg0 = sent + i;
                std::size_t pushed = 0;
                while (pushed < want) {
                    const std::size_t n = ring.tryPushBatch(
                        scratch + pushed, want - pushed);
                    if (n == 0)
                        std::this_thread::yield();
                    pushed += n;
                }
                sent += pushed;
            }
        });
    }
    for (auto &thread : threads)
        thread.join();
    RunResult result;
    result.seconds = timer.elapsedSeconds();
    result.ok = true;
    for (std::size_t r = 0; r < rings; ++r)
        result.ok = result.ok && ok[r];
    return result;
}

} // namespace
} // namespace hq

int
main(int argc, char **argv)
{
    using namespace hq;
    telemetry::handleBenchArgs(argc, argv);
    setLogLevel(LogLevel::Error);

    bool smoke = false;
    std::size_t total = 8u << 20; // 8 Mi messages
    std::size_t capacity = 4096;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--smoke") {
            smoke = true;
            total = 1u << 17;
        } else if (arg.rfind("--messages=", 0) == 0) {
            total = std::strtoull(arg.c_str() + 11, nullptr, 10);
        } else if (arg.rfind("--capacity=", 0) == 0) {
            capacity = std::strtoull(arg.c_str() + 11, nullptr, 10);
        }
    }

    std::printf("=== SPSC ring throughput (capacity %zu, %zu messages, "
                "2 threads) ===\n",
                capacity, total);
    std::printf("%-12s %14s %14s %10s\n", "batch", "time (s)", "Mmsg/s",
                "speedup");

    double single_rate = 0.0;
    bool all_ok = true;
    for (std::size_t batch : {std::size_t{1}, std::size_t{8},
                              std::size_t{32}, std::size_t{64}}) {
        const RunResult result = runOnce(capacity, total, batch);
        all_ok = all_ok && result.ok;
        const double rate = total / result.seconds / 1e6;
        if (batch == 1)
            single_rate = rate;
        std::printf("%-12zu %14.4f %14.2f %9.2fx%s\n", batch,
                    result.seconds, rate, rate / single_rate,
                    result.ok ? "" : "  ORDER VIOLATION");
    }

    // Multi-ring sweep: per-shard drains in the sharded verifier give
    // each worker its own rings, so aggregate transport throughput at
    // 1/2/4/8 independent rings bounds what shard scaling can deliver.
    std::printf("\n=== Multi-ring aggregate throughput (batch 32, "
                "%zu messages/ring) ===\n",
                total / 8);
    std::printf("%-12s %14s %14s %10s\n", "rings", "time (s)", "Mmsg/s",
                "speedup");
    double single_ring_rate = 0.0;
    for (std::size_t rings : {std::size_t{1}, std::size_t{2},
                              std::size_t{4}, std::size_t{8}}) {
        const RunResult result = runMultiRing(capacity, total / 8, rings);
        all_ok = all_ok && result.ok;
        const double rate =
            (total / 8) * rings / result.seconds / 1e6;
        if (rings == 1)
            single_ring_rate = rate;
        std::printf("%-12zu %14.4f %14.2f %9.2fx%s\n", rings,
                    result.seconds, rate, rate / single_ring_rate,
                    result.ok ? "" : "  ORDER VIOLATION");
    }

    if (!all_ok) {
        std::printf("\nFAIL: messages lost or reordered\n");
        return 1;
    }
    if (smoke)
        std::printf("\nsmoke OK: all batch sizes and ring counts "
                    "delivered every message in order\n");
    return 0;
}
