/**
 * @file
 * Figure 4 — AppendWrite-µarch: software MODEL vs hardware SIM, on the
 * smaller "train" inputs, measured in simulated processor cycles under
 * the ZSim-substitute core model (§5.3.1). NGINX is omitted, as in the
 * paper (I/O-focused, dominated by system calls).
 *
 * For each benchmark we simulate three executions of the HQ-CFI-SfeStk
 * program: the uninstrumented baseline, the instrumented program with
 * software-model AppendWrite costs (-MODEL-Train), and with the
 * hardware AppendWrite instruction (-SIM-Train). Relative performance =
 * baseline cycles / variant cycles.
 */

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <vector>

#include "cfi/design.h"
#include "common/log.h"
#include "common/stats.h"
#include "ipc/shm_channel.h"
#include "policy/pointer_integrity.h"
#include "sim/core_model.h"
#include "verifier/verifier.h"
#include "workloads/spec_generator.h"
#include "workloads/spec_profiles.h"
#include "telemetry/telemetry.h"

namespace hq {
namespace {

std::uint64_t
simulate(const SpecProfile &profile, bool instrumented,
         bool hw_appendwrite, double scale)
{
    ir::Module module = buildSpecModule(profile, scale);
    if (instrumented) {
        const Status status =
            instrumentModule(module, CfiDesign::HqSfeStk);
        if (!status.isOk())
            panic(status.toString());
    }

    CoreConfig core;
    core.hw_appendwrite = hw_appendwrite;
    CoreModel model(core);

    KernelModule kernel;
    auto policy = std::make_shared<PointerIntegrityPolicy>();
    Verifier::Config vconfig;
    vconfig.kill_on_violation = false; // continue mode (genuine UAFs)
    Verifier verifier(kernel, policy, vconfig);
    ShmChannel channel(1 << 14);
    std::unique_ptr<HqRuntime> runtime;
    HqRuntime *runtime_ptr = nullptr;
    if (instrumented) {
        verifier.attachChannel(&channel, 1);
        runtime = std::make_unique<HqRuntime>(1, channel, kernel);
        if (!runtime->enable().isOk())
            panic("enable failed");
        runtime_ptr = runtime.get();
        verifier.start();
    }

    VmConfig config = makeVmConfig(instrumented ? CfiDesign::HqSfeStk
                                                : CfiDesign::Baseline);
    config.cycle_sink = &model;
    Vm vm(module, config, runtime_ptr);
    const RunResult result = vm.run();
    if (result.exit != ExitKind::Ok)
        panic(profile.name + ": " + result.detail);
    if (runtime_ptr)
        verifier.stop();
    return model.cycles();
}

} // namespace
} // namespace hq

int
main(int argc, char **argv)
{
    using namespace hq;
    telemetry::handleBenchArgs(argc, argv);
    setLogLevel(LogLevel::Error);

    // "train" inputs: smaller than the ref-scale perf runs.
    double scale = 0.05;
    if (argc > 1)
        scale = std::atof(argv[1]);

    std::printf("=== Figure 4: AppendWrite-uarch MODEL vs SIM on train "
                "inputs (simulated cycles, scale %.3f) ===\n",
                scale);
    std::printf("%-14s %14s %14s %14s %9s %9s\n", "Benchmark",
                "base cycles", "MODEL cycles", "SIM cycles", "MODEL",
                "SIM");

    std::vector<double> model_rel;
    std::vector<double> sim_rel;
    for (const SpecProfile &profile : specProfiles()) {
        if (profile.name == "nginx")
            continue; // omitted, as in the paper
        const std::uint64_t base = simulate(profile, false, false, scale);
        const std::uint64_t model_cycles =
            simulate(profile, true, false, scale);
        const std::uint64_t sim_cycles =
            simulate(profile, true, true, scale);
        const double rel_model = static_cast<double>(base) /
                                 static_cast<double>(model_cycles);
        const double rel_sim = static_cast<double>(base) /
                               static_cast<double>(sim_cycles);
        model_rel.push_back(rel_model);
        sim_rel.push_back(rel_sim);
        std::printf("%-14s %14llu %14llu %14llu %9.3f %9.3f\n",
                    profile.name.c_str(),
                    static_cast<unsigned long long>(base),
                    static_cast<unsigned long long>(model_cycles),
                    static_cast<unsigned long long>(sim_cycles),
                    rel_model, rel_sim);
    }

    std::printf("\n%-28s %8s   %s\n", "Variant", "gmean", "(paper)");
    std::printf("%-28s %8.3f   0.78\n", "HQ-CFI-SfeStk-MODEL-Train",
                geomean(model_rel));
    std::printf("%-28s %8.3f   0.86\n", "HQ-CFI-SfeStk-SIM-Train",
                geomean(sim_rel));
    std::printf("\nExpected shape: hardware AppendWrite (SIM) costs a "
                "single store uop and\noutperforms the software MODEL; "
                "actual silicon would land between the\ntwo bounds "
                "(§5.3.1).\n");
    return 0;
}
