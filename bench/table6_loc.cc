/**
 * @file
 * Table 6 — size of HerQules components in approximate lines of code,
 * counted from this repository's sources and compared against the
 * paper's breakdown. (The reproduction's compiler includes the mini-IR
 * substrate that replaces LLVM, so it is expected to be larger.)
 */

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>
#include "telemetry/telemetry.h"

namespace {

namespace fs = std::filesystem;

std::size_t
countLines(const fs::path &dir)
{
    std::size_t lines = 0;
    if (!fs::exists(dir))
        return 0;
    for (const auto &entry : fs::recursive_directory_iterator(dir)) {
        if (!entry.is_regular_file())
            continue;
        const std::string ext = entry.path().extension().string();
        if (ext != ".h" && ext != ".cc")
            continue;
        std::ifstream in(entry.path());
        std::string line;
        while (std::getline(in, line))
            ++lines;
    }
    return lines;
}

} // namespace

int
main(int argc, char **argv)
{
    hq::telemetry::handleBenchArgs(argc, argv);
    const fs::path src = fs::path(HQ_SOURCE_DIR) / "src";

    struct Component
    {
        const char *name;
        std::vector<const char *> dirs;
        const char *paper;
    };
    const Component components[] = {
        {"FPGA", {"fpga"}, "1250"},
        {"Kernel", {"kernel"}, "1100"},
        {"Compiler", {"compiler", "ir"}, "3350"},
        {"IPC Interfaces", {"ipc", "uarch"}, "900"},
        {"Runtime", {"runtime"}, "350"},
        {"Verifier", {"verifier", "policy"}, "750"},
    };

    std::printf("=== Table 6: size of HerQules components (lines of "
                "code) ===\n");
    std::printf("%-16s %10s %10s\n", "Component", "This repo", "Paper");
    std::size_t total = 0;
    for (const Component &component : components) {
        std::size_t lines = 0;
        for (const char *dir : component.dirs)
            lines += countLines(src / dir);
        total += lines;
        std::printf("%-16s %10zu %10s\n", component.name, lines,
                    component.paper);
    }
    std::printf("%-16s %10zu %10s\n", "Total", total, "7700");
    std::printf("\nNote: the reproduction's 'Compiler' includes the "
                "mini-IR substrate that\nstands in for LLVM, and "
                "'Runtime' includes the VM that stands in for\nnative "
                "execution; both are therefore larger than the paper's "
                "pass-only\nand library-only counts.\n");
    return 0;
}
