/**
 * @file
 * Table 5 — successful RIPE exploits under each CFI design, grouped by
 * overflow origin. Every attack is executed for real: success requires
 * the payload's confirmation system call to complete (§5.2).
 */

#include <cstdio>
#include <cstdlib>
#include <map>

#include "common/log.h"
#include "workloads/ripe.h"
#include "telemetry/telemetry.h"

namespace hq {
namespace {

struct OriginCounts
{
    int bss = 0, data = 0, heap = 0, stack = 0;
    int total() const { return bss + data + heap + stack; }
};

OriginCounts
sweep(const std::vector<RipeAttack> &suite, CfiDesign design,
      std::size_t num_shards = 1)
{
    OriginCounts counts;
    for (const RipeAttack &attack : suite) {
        const RipeResult result = runRipeAttack(attack, design, num_shards);
        if (!result.succeeded)
            continue;
        switch (attack.origin) {
          case AttackOrigin::Bss: ++counts.bss; break;
          case AttackOrigin::Data: ++counts.data; break;
          case AttackOrigin::Heap: ++counts.heap; break;
          case AttackOrigin::Stack: ++counts.stack; break;
        }
    }
    return counts;
}

void
printRow(const char *name, const OriginCounts &c, const char *paper)
{
    std::printf("%-16s %5d %5d %5d %6d %6d   %s\n", name, c.bss, c.data,
                c.heap, c.stack, c.total(), paper);
}

/**
 * Re-run every attack under a 4-shard verifier and count verdicts that
 * differ from the serial run. Sharding must never change a verdict.
 */
int
shardParityMismatches(const std::vector<RipeAttack> &suite, CfiDesign design)
{
    int mismatches = 0;
    for (const RipeAttack &attack : suite) {
        const RipeResult serial = runRipeAttack(attack, design, 1);
        const RipeResult sharded = runRipeAttack(attack, design, 4);
        if (serial.succeeded != sharded.succeeded ||
            serial.detected != sharded.detected) {
            ++mismatches;
            std::fprintf(stderr,
                         "shard parity MISMATCH: %s / %s "
                         "(serial %d/%d, 4-shard %d/%d)\n",
                         designInfo(design).name.c_str(),
                         attack.name().c_str(), serial.succeeded,
                         serial.detected, sharded.succeeded,
                         sharded.detected);
        }
    }
    return mismatches;
}

/**
 * Re-run every attack with speculation window K and count verdicts that
 * differ from the strict run. The confirmation syscall is a speculation
 * barrier, so bounded speculation must never change a verdict.
 */
int
gatingParityMismatches(const std::vector<RipeAttack> &suite,
                       CfiDesign design, std::size_t window)
{
    int mismatches = 0;
    for (const RipeAttack &attack : suite) {
        const RipeResult strict =
            runRipeAttack(attack, design, 1, WireFormat::V1, 0);
        const RipeResult spec =
            runRipeAttack(attack, design, 1, WireFormat::V1, window);
        if (strict.succeeded != spec.succeeded ||
            strict.detected != spec.detected) {
            ++mismatches;
            std::fprintf(stderr,
                         "gating parity MISMATCH: %s / %s "
                         "(strict %d/%d, spec-%zu %d/%d)\n",
                         designInfo(design).name.c_str(),
                         attack.name().c_str(), strict.succeeded,
                         strict.detected, window, spec.succeeded,
                         spec.detected);
        }
    }
    return mismatches;
}

} // namespace
} // namespace hq

int
main(int argc, char **argv)
{
    using namespace hq;
    telemetry::handleBenchArgs(argc, argv);
    setLogLevel(LogLevel::Off); // epoch warnings are expected here

    int variants = 18;
    if (argc > 1)
        variants = std::atoi(argv[1]);
    const auto suite = ripeAttackSuite(variants);

    std::printf("=== Table 5: successful RIPE exploits by overflow "
                "origin (%zu attacks) ===\n",
                suite.size());
    std::printf("%-16s %5s %5s %5s %6s %6s   %s\n", "Design", "BSS",
                "Data", "Heap", "Stack", "Total",
                "(paper: BSS/Data/Heap/Stack/Total)");

    printRow("Baseline", sweep(suite, CfiDesign::Baseline),
             "214/234/234/272/954");
    printRow("Clang/LLVM CFI", sweep(suite, CfiDesign::ClangCfi),
             "60/60/60/10/190");
    printRow("CCFI", sweep(suite, CfiDesign::Ccfi), "0/0/0/0/0");
    printRow("CPI", sweep(suite, CfiDesign::Cpi), "10/10/10/10/40");
    printRow("HQ-CFI-SfeStk", sweep(suite, CfiDesign::HqSfeStk),
             "10/10/10/0/30");
    printRow("HQ-CFI-RetPtr", sweep(suite, CfiDesign::HqRetPtr),
             "0/0/0/0/0");

    std::printf("\nExpected shape: the baseline falls to everything; "
                "type-matching CFI\nfalls to code reuse; safe-stack "
                "designs fall to disclosure attacks on\nreturn "
                "pointers; CCFI and HQ-CFI-RetPtr block all exploits.\n");

    // Shard parity: the HQ designs route every policy message through
    // the verifier, so re-run their full corpus at num_shards=4 and
    // require per-attack verdicts identical to the serial sweep.
    std::printf("\n=== Shard parity (num_shards=1 vs 4, per attack) ===\n");
    int mismatches = 0;
    for (CfiDesign design : {CfiDesign::HqSfeStk, CfiDesign::HqRetPtr}) {
        const int m = shardParityMismatches(suite, design);
        std::printf("%-16s %s (%d mismatches)\n",
                    designInfo(design).name.c_str(),
                    m == 0 ? "OK" : "FAIL", m);
        mismatches += m;
    }

    // Gating parity: bounded speculation (window 4) must not change any
    // verdict either — the confirmation syscall is a speculation
    // barrier, so detected violations still block it.
    std::printf("\n=== Gating parity (strict vs spec-4, per attack) ===\n");
    for (CfiDesign design : {CfiDesign::HqSfeStk, CfiDesign::HqRetPtr}) {
        const int m = gatingParityMismatches(suite, design, 4);
        std::printf("%-16s %s (%d mismatches)\n",
                    designInfo(design).name.c_str(),
                    m == 0 ? "OK" : "FAIL", m);
        mismatches += m;
    }
    return mismatches == 0 ? 0 : 1;
}
