/**
 * @file
 * Shard-scaling benchmark — aggregate check throughput of the sharded
 * verifier at 1/2/4/8 shards over an 8-process workload.
 *
 * Eight producer threads (one per monitored pid, each with its own
 * ShmChannel, as in the real deployment where every process owns an
 * AppendWrite ring) stream PointerDefine/PointerCheck traffic while the
 * verifier's shard workers drain. Pids are chosen so the consistent
 * hash spreads them evenly at every tested shard count — the benchmark
 * measures shard parallelism, not hash luck. The run is only counted
 * when every message was verified and no false violation fired, so the
 * numbers cannot come at the cost of correctness.
 *
 * Parallel speedup requires real cores: on a 1-CPU host the sweep still
 * validates routing/correctness but reports ~1x (noted in the output).
 *
 * Flags:
 *   --smoke            quick correctness pass (small message count)
 *   --messages=N       messages per process (default 1<<19)
 *   --capacity=N       per-process ring capacity (default 4096)
 *   --telemetry[...]   standard telemetry flags (handleBenchArgs)
 */

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/log.h"
#include "common/timer.h"
#include "ipc/shm_channel.h"
#include "kernel/kernel.h"
#include "policy/pointer_integrity.h"
#include "telemetry/telemetry.h"
#include "verifier/shard.h"
#include "verifier/verifier.h"

namespace hq {
namespace {

constexpr std::size_t kProcesses = 8;

/**
 * Pick kProcesses pids that land on distinct shards at 8 shards AND
 * stay balanced at 2 and 4 (slot i → shard i%n for n in {2,4,8}), so
 * every sweep point gets an even workload split.
 */
std::vector<Pid>
balancedPids()
{
    std::vector<Pid> pids;
    for (std::size_t slot = 0; slot < kProcesses; ++slot) {
        for (Pid candidate = 100;; ++candidate) {
            if (shardIndexFor(candidate, 8) == slot % 8 &&
                shardIndexFor(candidate, 4) == slot % 4 &&
                shardIndexFor(candidate, 2) == slot % 2) {
                pids.push_back(candidate);
                break;
            }
        }
    }
    return pids;
}

struct RunResult
{
    double seconds = 0.0;
    bool ok = false;
    /// Per-shard undrained-backlog high-water marks (messages), from
    /// the health watchdog's verifier.shard<i>.queue_depth gauges.
    std::vector<std::uint64_t> queue_high_water;
};

RunResult
runOnce(std::size_t num_shards, const std::vector<Pid> &pids,
        std::size_t per_pid, std::size_t capacity)
{
    KernelModule kernel;
    auto policy = std::make_shared<PointerIntegrityPolicy>();
    Verifier::Config config;
    config.kill_on_violation = false;
    config.num_shards = num_shards;
    // Health watchdog on: its sampler is what populates the per-shard
    // queue-depth gauges whose high water the report prints. A 5ms
    // cadence samples a short run often enough to catch the backlog
    // peak without perturbing the drain loops.
    config.health_enabled = true;
    config.health.interval = std::chrono::milliseconds(5);
    Verifier verifier(kernel, policy, config);

    std::vector<std::unique_ptr<ShmChannel>> channels;
    for (Pid pid : pids) {
        kernel.enableProcess(pid);
        channels.push_back(std::make_unique<ShmChannel>(capacity));
        verifier.attachChannel(channels.back().get(), pid);
    }
    verifier.start();

    const std::uint64_t expected =
        static_cast<std::uint64_t>(pids.size()) * per_pid;
    Timer timer;
    std::vector<std::thread> producers;
    for (std::size_t p = 0; p < pids.size(); ++p) {
        producers.emplace_back([&, p] {
            Channel &channel = *channels[p];
            const std::uint64_t addr = 0x1000 + 0x100 * p;
            channel.send(Message(Opcode::PointerDefine, addr, 0xAAAA));
            for (std::size_t i = 1; i < per_pid; ++i)
                channel.send(Message(Opcode::PointerCheck, addr, 0xAAAA));
        });
    }
    for (auto &producer : producers)
        producer.join();
    while (verifier.totalMessages() < expected)
        std::this_thread::yield();
    RunResult result;
    result.seconds = timer.elapsedSeconds();
    verifier.stop();

    // Correctness gate: exact delivery, per-shard counts sum to the
    // total, and the benign stream produced zero violations.
    std::uint64_t shard_sum = 0;
    for (std::size_t i = 0; i < verifier.numShards(); ++i)
        shard_sum += verifier.shardMessages(i);
    bool violations = false;
    for (Pid pid : pids)
        violations = violations || verifier.hasViolation(pid);
    result.ok = verifier.totalMessages() == expected &&
                shard_sum == expected && !violations;

    // Harvest (then clear) the queue-depth high-water gauges so each
    // sweep point reports only its own backlog peak.
    auto &registry = telemetry::Registry::instance();
    for (std::size_t i = 0; i < verifier.numShards(); ++i) {
        telemetry::Gauge &gauge = registry.gauge(
            "verifier.shard" + std::to_string(i) + ".queue_depth");
        result.queue_high_water.push_back(gauge.max());
        gauge.reset();
    }
    return result;
}

} // namespace
} // namespace hq

int
main(int argc, char **argv)
{
    using namespace hq;
    telemetry::handleBenchArgs(argc, argv);
    setLogLevel(LogLevel::Error);

    bool smoke = false;
    std::size_t per_pid = 1u << 19;
    std::size_t capacity = 4096;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--smoke") {
            smoke = true;
            per_pid = 1u << 14;
        } else if (arg.rfind("--messages=", 0) == 0) {
            per_pid = std::strtoull(arg.c_str() + 11, nullptr, 10);
        } else if (arg.rfind("--capacity=", 0) == 0) {
            capacity = std::strtoull(arg.c_str() + 11, nullptr, 10);
        }
    }

    const std::vector<Pid> pids = balancedPids();
    const std::uint64_t total =
        static_cast<std::uint64_t>(pids.size()) * per_pid;
    const unsigned cores = std::thread::hardware_concurrency();
    std::printf("=== Shard scaling: %zu processes x %zu messages "
                "(%llu total, %u core%s) ===\n",
                pids.size(), per_pid,
                static_cast<unsigned long long>(total), cores,
                cores == 1 ? "" : "s");
    std::printf("%-8s %12s %12s %10s\n", "shards", "time (s)", "Mmsg/s",
                "speedup");

    double single_rate = 0.0;
    bool all_ok = true;
    for (std::size_t shards : {std::size_t{1}, std::size_t{2},
                               std::size_t{4}, std::size_t{8}}) {
        const RunResult result = runOnce(shards, pids, per_pid, capacity);
        all_ok = all_ok && result.ok;
        const double rate = total / result.seconds / 1e6;
        if (shards == 1)
            single_rate = rate;
        std::printf("%-8zu %12.4f %12.2f %9.2fx%s\n", shards,
                    result.seconds, rate, rate / single_rate,
                    result.ok ? "" : "  CORRECTNESS FAILURE");
        std::printf("         queue-depth high water:");
        for (std::size_t i = 0; i < result.queue_high_water.size(); ++i)
            std::printf(" s%zu=%llu", i,
                        static_cast<unsigned long long>(
                            result.queue_high_water[i]));
        std::printf("\n");
    }

    if (!all_ok) {
        std::printf("\nFAIL: messages lost, misrouted, or falsely "
                    "flagged\n");
        return 1;
    }
    if (cores < 4)
        std::printf("\nnote: <4 cores available; expect ~1x speedup "
                    "(routing/correctness still validated)\n");
    if (smoke)
        std::printf("\nsmoke OK: every shard count verified all %llu "
                    "messages with zero violations\n",
                    static_cast<unsigned long long>(total));
    return 0;
}
